//! Engine checkpointing: full filter state to bytes and back.
//!
//! The determinism contract (every object step draws from its own
//! `(seed, tag, epoch)` RNG stream; all cross-shard effects merge in
//! global tag order) means the engine's observable behaviour is a pure
//! function of its state at an epoch boundary. This module serializes
//! that state — per-shard particle sets, the reader filter, output
//! policies, compression cooldowns, the spatial index, the engine RNG —
//! so that a restored engine resumed at epoch `E+1` emits an event
//! stream **bit-identical** to the uninterrupted run (pinned by the
//! golden digests and the kill-and-restart suite).
//!
//! ## Format
//!
//! A checkpoint is a single binary blob, no serde:
//!
//! ```text
//! magic "RFCKPT01" | version u32 | config fingerprint u64 | epoch u64
//! payload length u64 | payload bytes | FNV-1a(payload) u64
//! ```
//!
//! All integers and float bit patterns are little-endian. The config
//! fingerprint covers every [`FilterConfig`] field **except**
//! `worker_threads` and `num_shards` — those change cost, not output,
//! so a checkpoint taken with 8 shards restores into a 1-shard engine
//! (objects are re-distributed by tag residue on restore).
//!
//! Files are written atomically: temp file + `fsync` + rename +
//! directory `fsync`, so a crash mid-save leaves the previous
//! checkpoint intact.
//!
//! [`FilterConfig`]: crate::config::FilterConfig

use super::InferenceEngine;
use crate::compression::CompressedBelief;
use crate::config::{FilterConfig, ReaderMode};
use crate::factored::{ObjectFilter, ReaderFilter};
use crate::output::OutputPolicy;
use crate::particle::{ObjectParticle, ReaderParticle};
use crate::shard::{shard_index, Belief, ObjectState, Shard};
use crate::spatial_hook::SpatialHook;
use rand::rngs::StdRng;
use rfid_geom::{Aabb, Gaussian3, Mat3, Point3, Pose};
use rfid_model::object::LocationPrior;
use rfid_model::sensor::ReadRateModel;
use rfid_stream::{Epoch, TagId};
use std::io::Write as _;
use std::path::Path;

/// File magic: "RFCKPT" + format generation.
pub const MAGIC: [u8; 8] = *b"RFCKPT01";
/// Format version inside the current magic generation.
pub const VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a checkpoint could not be read or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The blob is not a checkpoint, is truncated, or fails its
    /// checksum.
    Corrupt(&'static str),
    /// The checkpoint format is newer than this build understands.
    UnsupportedVersion(u32),
    /// The checkpoint was taken under a different inference
    /// configuration (fingerprints differ).
    ConfigMismatch { expected: u64, found: u64 },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint config fingerprint {found:#018x} does not match the engine's \
                 {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------
// byte-level encoding
// ---------------------------------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn point(&mut self, p: &Point3) {
        self.f64(p.x);
        self.f64(p.y);
        self.f64(p.z);
    }
    fn pose(&mut self, p: &Pose) {
        self.point(&p.pos);
        self.f64(p.phi);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.buf.len())
            .ok_or(CheckpointError::Corrupt("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A length that must be storable (guards against allocating from a
    /// corrupt count before the data would fail to decode anyway).
    fn len(&mut self) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        if n > (self.buf.len() - self.pos) as u64 {
            return Err(CheckpointError::Corrupt("implausible element count"));
        }
        Ok(n as usize)
    }
    fn point(&mut self) -> Result<Point3, CheckpointError> {
        Ok(Point3::new(self.f64()?, self.f64()?, self.f64()?))
    }
    fn pose(&mut self) -> Result<Pose, CheckpointError> {
        let pos = self.point()?;
        let phi = self.f64()?;
        Ok(Pose { pos, phi })
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// The canonical byte string the config fingerprint hashes: every
/// output-relevant [`FilterConfig`] field, in declaration order.
/// `worker_threads` and `num_shards` are deliberately excluded — the
/// determinism contract guarantees they never change the event stream.
fn config_bytes(cfg: &FilterConfig) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(cfg.particles_per_object as u64);
    e.u64(cfg.reader_particles as u64);
    e.f64(cfg.resample_ess_frac);
    e.f64(cfg.init_range_overestimate);
    e.f64(cfg.init_cone_half_angle);
    e.f64(cfg.max_init_range);
    e.f64(cfg.respawn_distance);
    e.f64(cfg.small_move_distance);
    e.u8(match cfg.reader_mode {
        ReaderMode::Filter => 0,
        ReaderMode::TrustReports => 1,
    });
    e.u8(cfg.use_spatial_index as u8);
    e.u8(cfg.compression.enabled as u8);
    e.u64(cfg.compression.idle_epochs);
    e.f64(cfg.compression.max_cross_entropy);
    e.u64(cfg.compression.decompressed_particles as u64);
    e.u8(cfg.likelihood_table.enabled as u8);
    if cfg.likelihood_table.enabled {
        // bin widths shape the weights only while the table is on
        e.f64(cfg.likelihood_table.d_step);
        e.f64(cfg.likelihood_table.theta_step);
    }
    e.u64(cfg.report_delay_epochs);
    e.u64(cfg.seed);
    e.buf
}

/// The fingerprint of an inference configuration: FNV-1a over
/// [`config_bytes`]. Two configs fingerprint equal iff they produce
/// identical event streams from identical state.
pub fn config_fingerprint(cfg: &FilterConfig) -> u64 {
    fnv1a(FNV_OFFSET, &config_bytes(cfg))
}

/// The epoch recorded in a checkpoint blob's header (cheap peek — no
/// payload validation beyond the magic and version).
pub fn peek_epoch(bytes: &[u8]) -> Result<Epoch, CheckpointError> {
    let mut d = Dec::new(bytes);
    if d.take(8)? != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic"));
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let _fingerprint = d.u64()?;
    Ok(Epoch(d.u64()?))
}

impl<P: LocationPrior, S: ReadRateModel> InferenceEngine<P, S> {
    /// The fingerprint of this engine's configuration (see
    /// [`config_fingerprint`]).
    pub fn config_fingerprint(&self) -> u64 {
        config_fingerprint(&self.config)
    }

    /// Serializes the full filter state as of the completion of
    /// `epoch` (call at an epoch boundary — after `process_batch`,
    /// before the next).
    pub fn checkpoint_bytes(&self, epoch: Epoch) -> Vec<u8> {
        let mut p = Enc::default();

        // engine RNG
        for w in self.rng.state() {
            p.u64(w);
        }

        // last report
        match &self.last_report {
            None => p.u8(0),
            Some(pose) => {
                p.u8(1);
                p.pose(pose);
            }
        }

        // reader filter
        match &self.reader {
            None => p.u8(0),
            Some(r) => {
                p.u8(1);
                p.u64(r.len() as u64);
                for rp in r.particles() {
                    p.pose(&rp.pose);
                    p.f64(rp.log_w);
                }
                for s in r.support() {
                    p.f64(*s);
                }
                p.u64(r.resample_count());
            }
        }

        // statistics (per_shard is re-derived on restore)
        p.u64(self.stats.epochs);
        p.u64(self.stats.readings);
        p.u64(self.stats.object_updates);
        p.u64(self.stats.events_emitted);
        p.u64(self.stats.object_resamples);
        p.u64(self.stats.reader_resamples);
        p.u64(self.stats.compressions);
        p.u64(self.stats.decompressions);
        p.u64(self.stats.half_respawns);
        p.u64(self.stats.full_reinits);

        // object states, globally sorted by tag (shard-count neutral)
        let mut tags: Vec<TagId> = self.tracked_objects().collect();
        tags.sort_unstable();
        p.u64(tags.len() as u64);
        for tag in &tags {
            let state = self
                .shard(*tag)
                .objects
                .get(tag)
                .expect("tracked tag has state");
            p.u64(tag.0);
            match &state.belief {
                Belief::Active(f) => {
                    p.u8(0);
                    p.u64(f.len() as u64);
                    for op in f.iter_particles() {
                        p.point(&op.loc);
                        p.u32(op.reader_idx);
                        p.f64(op.log_w);
                    }
                    p.u64(f.pointer_stamp());
                    p.u64(f.resample_count());
                }
                Belief::Compressed(c) => {
                    p.u8(1);
                    p.point(&c.gaussian.mean);
                    for row in &c.gaussian.cov.m {
                        for v in row {
                            p.f64(*v);
                        }
                    }
                    p.f64(c.loss);
                    p.u64(c.compressed_at.0);
                }
            }
            let (loc, var) = state.last_estimate;
            p.point(&loc);
            for v in var {
                p.f64(v);
            }
            p.u64(state.last_read.0);
            p.u64(state.compression_due);
        }

        // output-policy scope states, globally sorted by tag
        let mut rows: Vec<(TagId, Epoch, Epoch, bool)> = Vec::new();
        for shard in &self.shards {
            rows.extend(shard.policy.snapshot_states());
        }
        rows.sort_unstable_by_key(|r| r.0);
        p.u64(rows.len() as u64);
        for (tag, entered, last_read, reported) in &rows {
            p.u64(tag.0);
            p.u64(entered.0);
            p.u64(last_read.0);
            p.u8(*reported as u8);
        }

        // compression cooldown entries, sorted by (due epoch, tag).
        // Per-tag sweep decisions are order-independent (see the sweep
        // in the parent module), so the canonical order restores an
        // equivalent schedule for any shard count.
        let mut cooldown: Vec<(u64, TagId)> = Vec::new();
        for shard in &self.shards {
            for (due, tags) in &shard.cooldown {
                cooldown.extend(tags.iter().map(|t| (*due, *t)));
            }
        }
        cooldown.sort_unstable();
        p.u64(cooldown.len() as u64);
        for (due, tag) in &cooldown {
            p.u64(*due);
            p.u64(tag.0);
        }

        // spatial index: regions in insertion order
        match &self.hook {
            None => p.u8(0),
            Some(hook) => {
                p.u8(1);
                let n = hook.num_regions() as u64;
                p.u64(n);
                for id in 0..n {
                    let bbox = hook.region_box(id);
                    p.point(&bbox.min);
                    p.point(&bbox.max);
                    let members = hook.region_members(id);
                    p.u64(members.len() as u64);
                    for m in members {
                        p.u64(m.0);
                    }
                }
            }
        }

        // frame the payload
        let mut out = Enc::default();
        out.buf.extend_from_slice(&MAGIC);
        out.u32(VERSION);
        out.u64(self.config_fingerprint());
        out.u64(epoch.0);
        out.u64(p.buf.len() as u64);
        let checksum = fnv1a(FNV_OFFSET, &p.buf);
        out.buf.extend_from_slice(&p.buf);
        out.u64(checksum);
        out.buf
    }

    /// Restores the engine to the state captured by a
    /// [`checkpoint_bytes`](Self::checkpoint_bytes) blob. The engine
    /// must have been built with a fingerprint-equal configuration
    /// (shard/worker counts may differ). Returns the checkpoint epoch;
    /// resume processing from the next batch after it.
    ///
    /// On error the engine may be partially overwritten — rebuild it
    /// before retrying.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<Epoch, CheckpointError> {
        let mut d = Dec::new(bytes);
        if d.take(8)? != MAGIC {
            return Err(CheckpointError::Corrupt("bad magic"));
        }
        let version = d.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let found = d.u64()?;
        let expected = self.config_fingerprint();
        if found != expected {
            return Err(CheckpointError::ConfigMismatch { expected, found });
        }
        let epoch = Epoch(d.u64()?);
        let payload_len = d.len()?;
        let payload = d.take(payload_len)?;
        let checksum = d.u64()?;
        if !d.done() {
            return Err(CheckpointError::Corrupt("trailing bytes"));
        }
        if fnv1a(FNV_OFFSET, payload) != checksum {
            return Err(CheckpointError::Corrupt("payload checksum mismatch"));
        }
        let mut d = Dec::new(payload);

        // engine RNG
        let mut words = [0u64; 4];
        for w in &mut words {
            *w = d.u64()?;
        }
        self.rng = StdRng::from_state(words);

        // last report
        self.last_report = match d.u8()? {
            0 => None,
            1 => Some(d.pose()?),
            _ => return Err(CheckpointError::Corrupt("bad last-report flag")),
        };

        // reader filter
        self.reader = match d.u8()? {
            0 => None,
            1 => {
                let n = d.len()?;
                if n == 0 {
                    return Err(CheckpointError::Corrupt("empty reader filter"));
                }
                let mut particles = Vec::with_capacity(n);
                for _ in 0..n {
                    let pose = d.pose()?;
                    let log_w = d.f64()?;
                    particles.push(ReaderParticle { pose, log_w });
                }
                let mut support = Vec::with_capacity(n);
                for _ in 0..n {
                    support.push(d.f64()?);
                }
                let resamples = d.u64()?;
                Some(ReaderFilter::from_parts(particles, support, resamples))
            }
            _ => return Err(CheckpointError::Corrupt("bad reader flag")),
        };

        // statistics
        self.stats.epochs = d.u64()?;
        self.stats.readings = d.u64()?;
        self.stats.object_updates = d.u64()?;
        self.stats.events_emitted = d.u64()?;
        self.stats.object_resamples = d.u64()?;
        self.stats.reader_resamples = d.u64()?;
        self.stats.compressions = d.u64()?;
        self.stats.decompressions = d.u64()?;
        self.stats.half_respawns = d.u64()?;
        self.stats.full_reinits = d.u64()?;

        // rebuild the shards from scratch
        let num_shards = self.config.num_shards;
        self.shards = (0..num_shards)
            .map(|_| {
                Shard::new(OutputPolicy::new(
                    self.config.report_delay_epochs,
                    self.config.report_delay_epochs.saturating_mul(2),
                ))
            })
            .collect();
        self.num_shards = num_shards as u64;

        // object states
        let n_objects = d.len()?;
        for _ in 0..n_objects {
            let tag = TagId(d.u64()?);
            let belief = match d.u8()? {
                0 => {
                    let k = d.len()?;
                    if k == 0 {
                        return Err(CheckpointError::Corrupt("empty object filter"));
                    }
                    let mut particles = Vec::with_capacity(k);
                    for _ in 0..k {
                        let loc = d.point()?;
                        let reader_idx = d.u32()?;
                        let log_w = d.f64()?;
                        particles.push(ObjectParticle {
                            loc,
                            reader_idx,
                            log_w,
                        });
                    }
                    let stamp = d.u64()?;
                    let resamples = d.u64()?;
                    Belief::Active(ObjectFilter::from_parts(particles, stamp, resamples))
                }
                1 => {
                    let mean = d.point()?;
                    let mut m = [[0.0f64; 3]; 3];
                    for row in &mut m {
                        for v in row.iter_mut() {
                            *v = d.f64()?;
                        }
                    }
                    let loss = d.f64()?;
                    let compressed_at = Epoch(d.u64()?);
                    Belief::Compressed(CompressedBelief {
                        // Gaussian3::new re-derives the Cholesky/inverse
                        // caches deterministically from (mean, cov)
                        gaussian: Gaussian3::new(mean, Mat3 { m }),
                        loss,
                        compressed_at,
                    })
                }
                _ => return Err(CheckpointError::Corrupt("bad belief kind")),
            };
            let loc = d.point()?;
            let var = [d.f64()?, d.f64()?, d.f64()?];
            let last_read = Epoch(d.u64()?);
            let compression_due = d.u64()?;
            let shard = &mut self.shards[shard_index(self.num_shards, tag)];
            if matches!(belief, Belief::Compressed(_)) {
                shard.compressed += 1;
            }
            shard.objects.insert(
                tag,
                ObjectState {
                    belief,
                    last_estimate: (loc, var),
                    last_read,
                    compression_due,
                },
            );
        }

        // output-policy scope states, re-distributed by tag residue
        let n_rows = d.len()?;
        let mut per_shard_rows: Vec<Vec<(TagId, Epoch, Epoch, bool)>> =
            (0..num_shards).map(|_| Vec::new()).collect();
        for _ in 0..n_rows {
            let tag = TagId(d.u64()?);
            let entered = Epoch(d.u64()?);
            let last_read = Epoch(d.u64()?);
            let reported = match d.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CheckpointError::Corrupt("bad reported flag")),
            };
            per_shard_rows[shard_index(self.num_shards, tag)]
                .push((tag, entered, last_read, reported));
        }
        for (shard, rows) in self.shards.iter_mut().zip(per_shard_rows) {
            shard.policy.restore_states(rows);
        }

        // compression cooldowns
        let n_cooldown = d.len()?;
        for _ in 0..n_cooldown {
            let due = d.u64()?;
            let tag = TagId(d.u64()?);
            let shard = &mut self.shards[shard_index(self.num_shards, tag)];
            shard.cooldown.entry(due).or_default().push(tag);
            shard.cooldown_len += 1;
        }

        // spatial index
        self.hook = match d.u8()? {
            0 => None,
            1 => {
                let mut hook = SpatialHook::new(self.range_over);
                let n_regions = d.len()?;
                let mut members = Vec::new();
                for _ in 0..n_regions {
                    let min = d.point()?;
                    let max = d.point()?;
                    let n_members = d.len()?;
                    members.clear();
                    for _ in 0..n_members {
                        members.push(TagId(d.u64()?));
                    }
                    hook.record(Aabb::new(min, max), members.iter().copied());
                }
                Some(hook)
            }
            _ => return Err(CheckpointError::Corrupt("bad hook flag")),
        };
        if !d.done() {
            return Err(CheckpointError::Corrupt("trailing payload bytes"));
        }
        if self.hook.is_some() != self.config.use_spatial_index {
            return Err(CheckpointError::Corrupt(
                "hook presence disagrees with config",
            ));
        }

        self.refresh_per_shard_stats();
        Ok(epoch)
    }

    /// Writes a checkpoint atomically: the blob lands in a temp file,
    /// is fsynced, renamed over `path`, and the directory is fsynced —
    /// a crash at any point leaves either the old or the new
    /// checkpoint, never a torn one.
    pub fn save_checkpoint(&self, path: &Path, epoch: Epoch) -> Result<(), CheckpointError> {
        let bytes = self.checkpoint_bytes(epoch);
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let tmp = path.with_extension("ckpt-tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = dir {
            // commit the rename itself
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Restores from a checkpoint file written by
    /// [`save_checkpoint`](Self::save_checkpoint). Returns the
    /// checkpoint epoch.
    pub fn load_checkpoint(&mut self, path: &Path) -> Result<Epoch, CheckpointError> {
        let bytes = std::fs::read(path)?;
        self.restore_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FilterConfig;
    use crate::engine::run_engine;
    use rfid_model::object::BoxPrior;
    use rfid_model::{JointModel, ModelParams};
    use rfid_stream::{EpochBatch, LocationEvent};

    fn prior() -> BoxPrior {
        BoxPrior::new(Aabb::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(4.0, 40.0, 0.0),
        ))
    }

    fn engine(config: FilterConfig) -> InferenceEngine<BoxPrior> {
        let model = JointModel::new(ModelParams::default_warehouse());
        let shelf = vec![
            (TagId(1_000_000), Point3::new(2.0, 2.0, 0.0)),
            (TagId(1_000_001), Point3::new(2.0, 6.0, 0.0)),
        ];
        InferenceEngine::new(model, prior(), shelf, config).unwrap()
    }

    fn cfg() -> FilterConfig {
        let mut cfg = FilterConfig::full_default();
        cfg.particles_per_object = 120;
        cfg.reader_particles = 25;
        cfg.report_delay_epochs = 8;
        cfg.compression.idle_epochs = 6;
        cfg
    }

    fn batches(n: u64) -> Vec<EpochBatch> {
        use rand::{Rng, SeedableRng};
        let model = JointModel::new(ModelParams::default_warehouse());
        let mut rng = StdRng::seed_from_u64(99);
        let objs: Vec<(u64, Point3)> = (0..4)
            .map(|i| (i, Point3::new(2.0, 1.0 + i as f64 * 2.0, 0.0)))
            .collect();
        (0..n)
            .map(|t| {
                let y = t as f64 * 0.1;
                let pose = Pose::new(Point3::new(0.0, y, 0.0), 0.0);
                let mut readings = Vec::new();
                for (tag, loc) in &objs {
                    if rng.gen::<f64>() < model.sensor.p_read(&pose, loc) {
                        readings.push(TagId(*tag));
                    }
                }
                EpochBatch {
                    epoch: Epoch(t),
                    readings,
                    reader_report: Some(pose),
                }
            })
            .collect()
    }

    fn assert_streams_equal(a: &[LocationEvent], b: &[LocationEvent]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.epoch, y.epoch);
            assert_eq!(x.tag, y.tag);
            assert_eq!(x.location.x.to_bits(), y.location.x.to_bits());
            assert_eq!(x.location.y.to_bits(), y.location.y.to_bits());
            assert_eq!(x.location.z.to_bits(), y.location.z.to_bits());
            match (&x.stats, &y.stats) {
                (None, None) => {}
                (Some(s), Some(t)) => {
                    for (a, b) in s.var.iter().zip(t.var.iter()) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                    assert_eq!(s.support.to_bits(), t.support.to_bits());
                }
                _ => panic!("stats presence differs"),
            }
        }
    }

    #[test]
    fn restore_resumes_bit_identically() {
        let all = batches(70);
        let mut baseline = engine(cfg());
        let expect = run_engine(&mut baseline, &all);

        // run to epoch 30, checkpoint, restore into a fresh engine,
        // resume: the concatenated streams must match exactly
        for cut in [1usize, 30, 69] {
            let mut first = engine(cfg());
            let mut events = Vec::new();
            for b in &all[..cut] {
                first.process_batch_into(b, &mut events);
            }
            let blob = first.checkpoint_bytes(Epoch(cut as u64 - 1));

            let mut resumed = engine(cfg());
            let at = resumed.restore_bytes(&blob).unwrap();
            assert_eq!(at, Epoch(cut as u64 - 1));
            for b in &all[cut..] {
                resumed.process_batch_into(b, &mut events);
            }
            resumed.finalize_into(Epoch(69), &mut events);
            assert_streams_equal(&expect, &events);
            assert_eq!(resumed.stats().epochs, 70);
        }
    }

    #[test]
    fn restore_across_shard_counts() {
        let all = batches(50);
        let mut baseline = engine(cfg());
        let expect = run_engine(&mut baseline, &all);

        // checkpoint from a 4-shard engine, restore into 1-shard
        let mut sharded_cfg = cfg();
        sharded_cfg.num_shards = 4;
        let mut first = engine(sharded_cfg);
        let mut events = Vec::new();
        for b in &all[..25] {
            first.process_batch_into(b, &mut events);
        }
        let blob = first.checkpoint_bytes(Epoch(24));

        let mut resumed = engine(cfg());
        resumed.restore_bytes(&blob).unwrap();
        for b in &all[25..] {
            resumed.process_batch_into(b, &mut events);
        }
        resumed.finalize_into(Epoch(49), &mut events);
        assert_streams_equal(&expect, &events);
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        let mut e = engine(cfg());
        for b in &batches(10) {
            e.process_batch(b);
        }
        let blob = e.checkpoint_bytes(Epoch(9));
        assert_eq!(peek_epoch(&blob).unwrap(), Epoch(9));

        // truncation
        let mut fresh = engine(cfg());
        assert!(matches!(
            fresh.restore_bytes(&blob[..blob.len() - 9]),
            Err(CheckpointError::Corrupt(_))
        ));
        // bit flip in the payload
        let mut flipped = blob.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let mut fresh = engine(cfg());
        assert!(fresh.restore_bytes(&flipped).is_err());
        // bad magic
        let mut bad = blob.clone();
        bad[0] = b'X';
        let mut fresh = engine(cfg());
        assert!(matches!(
            fresh.restore_bytes(&bad),
            Err(CheckpointError::Corrupt(_))
        ));
        // config mismatch
        let mut other = cfg();
        other.seed ^= 1;
        let mut fresh = engine(other);
        assert!(matches!(
            fresh.restore_bytes(&blob),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn save_is_atomic_and_loadable() {
        let dir = std::env::temp_dir().join(format!("rfid-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.ckpt");
        let mut e = engine(cfg());
        let all = batches(20);
        for b in &all {
            e.process_batch(b);
        }
        e.save_checkpoint(&path, Epoch(19)).unwrap();
        // no temp file left behind
        assert!(!path.with_extension("ckpt-tmp").exists());
        let mut restored = engine(cfg());
        assert_eq!(restored.load_checkpoint(&path).unwrap(), Epoch(19));
        // the restored engine checkpoints to the identical blob
        assert_eq!(
            restored.checkpoint_bytes(Epoch(19)),
            e.checkpoint_bytes(Epoch(19))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_ignores_execution_knobs() {
        let base = cfg();
        let mut par = base;
        par.worker_threads = 8;
        par.num_shards = 4;
        assert_eq!(config_fingerprint(&base), config_fingerprint(&par));
        let mut other = base;
        other.particles_per_object += 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other));
    }
}
