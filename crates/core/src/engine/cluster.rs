//! Head / worker halves of the multi-process engine cluster.
//!
//! The factored filter was sharded by `tag % N` in-process (see
//! [`crate::shard`]); this module splits the same partition across
//! *processes* while keeping the emitted event stream **bit-identical**
//! to the single-process engine. The obstacle is the reader filter,
//! which globally couples the objects three ways:
//!
//! 1. every object step stages a **support row** that is merged into
//!    the reader's support accumulator in global tag order (f64 sums —
//!    order is part of the contract);
//! 2. the reader **resample** consumes one engine-RNG uniform, and its
//!    target distribution mixes the merged support into the weights;
//! 3. after a resample, each active object's dead ancestor pointers are
//!    re-drawn from the engine RNG, one `gen_range` per dead pointer,
//!    in global tag order.
//!
//! The split that preserves all three: a [`ClusterHead`] owns the
//! reader and the engine RNG, and the workers own disjoint `tag % N`
//! slices of the objects. Per epoch:
//!
//! * [`ClusterHead::begin_epoch`] runs the reference reader update on a
//!   *stripped* batch (shelf readings + report only — object readings
//!   are partitioned out to their owners), so the head's engine-RNG
//!   stream is exactly the single-process one. It broadcasts an
//!   [`EpochPlan`]: the post-weight reader particles, the posterior
//!   estimate, whether a resample *will* fire (the reader's weights are
//!   frozen between ingest and the resample decision, so the ESS test
//!   is decidable up front), and each worker's readings.
//! * each [`ClusterWorker::process_epoch`] installs the reader
//!   snapshot, steps its own objects (object steps draw only from
//!   per-`(seed, tag, epoch)` task streams, so location does not
//!   matter), emits its due events, and returns one [`TaskReport`] per
//!   stepped object: the staged support row, plus — on will-resample
//!   epochs — a histogram of the object's reader-ancestor pointers.
//! * [`ClusterHead::finish_epoch`] k-way-merges the reports by tag
//!   (workers own disjoint residue classes, so the merged order is the
//!   single-process step order), merges the support rows, and runs the
//!   reference resample on its own RNG. When the resample fires it
//!   replays the remap draw sequence — the histograms give each
//!   object's dead-pointer count without shipping the particles — and
//!   returns a [`ResampleDirective`] carrying the remap, the
//!   post-resample reader, and each object's replacement draws.
//! * [`ClusterWorker::apply_resample`] applies the remap with the
//!   supplied draws (in particle order, exactly as
//!   `ObjectFilter::apply_reader_remap` would have drawn them), swaps
//!   in the post-resample reader, and runs the compression sweep.
//!
//! The event stream of an epoch is the tag-ordered concatenation of
//! the workers' due events; a coordinator reconstructs the global
//! order with the same k-way merge rule (`shard::merge_by_tag`
//! semantics — see `rfid_stream::wire::merge_events_by_tag`). The
//! wire protocol and process topology live in the `rfid-cluster`
//! crate; this module is transport-free so the equivalence can be
//! tested in-process.

use super::*;
use crate::factored::reader::ReaderRemap;
use crate::particle::ReaderParticle;
use rand::Rng;

/// Everything a worker needs to run one epoch, broadcast by the head.
#[derive(Debug, Clone)]
pub struct EpochPlan {
    pub epoch: Epoch,
    /// Posterior reader estimate after the head's ingest (sensing box +
    /// re-detection anchor; identical on every worker).
    pub reader_est: Pose,
    /// Whether the reader resample will fire this epoch. Decidable at
    /// broadcast time: the reader weights are frozen between ingest and
    /// the resample decision. Workers collect ancestor histograms only
    /// when set.
    pub will_resample: bool,
    /// Post-weight reader particles of this epoch.
    pub reader: Vec<ReaderParticle>,
    /// Object readings partitioned by owner (`tag % num_workers`).
    pub readings: Vec<Vec<TagId>>,
}

/// One stepped object's contribution to the head's reader update.
#[derive(Debug, Clone)]
pub struct TaskReport {
    pub tag: TagId,
    /// The staged support row (one entry per reader particle).
    pub support: Vec<f64>,
    /// Histogram of the object's post-step reader-ancestor pointers
    /// (empty unless the plan announced a resample).
    pub reader_hist: Vec<u32>,
}

/// The head's reply on epochs where the reader resampled.
#[derive(Debug, Clone)]
pub struct ResampleDirective {
    pub remap: ReaderRemap,
    /// Post-resample reader particles (uniform weights).
    pub reader: Vec<ReaderParticle>,
    /// Replacement draws for dead ancestor pointers, one list per
    /// stepped object in global tag order; each worker consumes its own
    /// tags' lists in particle order.
    pub draws: Vec<(TagId, Vec<u32>)>,
}

/// The cluster's reader-owning half: a full engine fed stripped
/// batches, so it never tracks objects but replays the single-process
/// reader update and RNG stream exactly.
pub struct ClusterHead<P: LocationPrior, S: ReadRateModel = rfid_model::LogisticSensorModel> {
    engine: InferenceEngine<P, S>,
    num_workers: usize,
    /// Reused stripped-batch buffer.
    stripped: EpochBatch,
}

impl<P: LocationPrior, S: ReadRateModel> ClusterHead<P, S> {
    /// Wraps an engine built with the *same* configuration (seed
    /// included) as the single-process reference.
    pub fn new(engine: InferenceEngine<P, S>, num_workers: usize) -> Self {
        assert!(num_workers >= 1, "a cluster has at least one worker");
        Self {
            engine,
            num_workers,
            stripped: EpochBatch {
                epoch: Epoch(0),
                readings: Vec::new(),
                reader_report: None,
            },
        }
    }

    /// Runs the reader update for one epoch and returns the broadcast
    /// plan. Object readings never enter the head's engine; they are
    /// routed to their `tag % num_workers` owner in the plan.
    pub fn begin_epoch(&mut self, batch: &EpochBatch) -> EpochPlan {
        let e = &mut self.engine;
        e.stats.epochs += 1;
        e.stats.readings += batch.readings.len() as u64;
        let mut readings = vec![Vec::new(); self.num_workers];
        self.stripped.epoch = batch.epoch;
        self.stripped.reader_report = batch.reader_report;
        self.stripped.readings.clear();
        for tag in &batch.readings {
            if e.shelf_ids.contains(tag) {
                self.stripped.readings.push(*tag);
            } else {
                readings[(tag.0 % self.num_workers as u64) as usize].push(*tag);
            }
        }
        let reader_est = e.ingest(&self.stripped);
        // a no-object infer: builds the likelihood table lazily and
        // records an empty sensing region, but steps nothing
        e.infer(batch.epoch, &reader_est);
        let reader = e.reader.as_ref().expect("reader initialized");
        let will_resample = e.config.reader_mode == ReaderMode::Filter
            && reader.ess() < e.config.resample_ess_frac * reader.len() as f64;
        EpochPlan {
            epoch: batch.epoch,
            reader_est,
            will_resample,
            reader: reader.particles().to_vec(),
            readings,
        }
    }

    /// Merges the workers' support rows in global tag order and runs
    /// the reference resample decision. `reports` holds one list per
    /// worker, each sorted by tag (the worker's step order). Returns
    /// the directive iff the plan announced `will_resample`.
    pub fn finish_epoch(&mut self, reports: &[Vec<TaskReport>]) -> Option<ResampleDirective> {
        let e = &mut self.engine;
        // k-way merge by tag: residue classes are disjoint, so this is
        // exactly the single-process global step order
        let total: usize = reports.iter().map(Vec::len).sum();
        let mut order: Vec<&TaskReport> = Vec::with_capacity(total);
        let mut pos = vec![0usize; reports.len()];
        loop {
            let mut best: Option<usize> = None;
            for (i, list) in reports.iter().enumerate() {
                if pos[i] < list.len()
                    && best.is_none_or(|b| list[pos[i]].tag < reports[b][pos[b]].tag)
                {
                    best = Some(i);
                }
            }
            let Some(b) = best else { break };
            order.push(&reports[b][pos[b]]);
            pos[b] += 1;
        }
        e.stats.object_updates += order.len() as u64;
        {
            let reader = e.reader.as_mut().expect("reader initialized");
            for t in &order {
                reader.merge_support(&t.support);
            }
        }
        if e.config.reader_mode != ReaderMode::Filter {
            return None;
        }
        let remap = e
            .reader
            .as_mut()
            .expect("reader initialized")
            .maybe_resample(e.config.resample_ess_frac, &mut e.rng)?;
        e.stats.reader_resamples += 1;
        // replay the single-process remap draw sequence: one gen_range
        // per dead ancestor pointer, objects in global tag order
        let mut draws = Vec::with_capacity(order.len());
        for t in &order {
            let dead: usize = t
                .reader_hist
                .iter()
                .enumerate()
                .filter(|(r, _)| remap.map(*r as u32).is_none())
                .map(|(_, c)| *c as usize)
                .sum();
            let mut vals = Vec::with_capacity(dead);
            for _ in 0..dead {
                vals.push(e.rng.gen_range(0..remap.num_new()));
            }
            draws.push((t.tag, vals));
        }
        let reader = e.reader.as_ref().expect("reader initialized");
        Some(ResampleDirective {
            remap,
            reader: reader.particles().to_vec(),
            draws,
        })
    }

    /// The head engine's statistics (reader resamples, epoch counts;
    /// `object_updates` counts the merged cluster-wide steps).
    pub fn stats(&self) -> &EngineStats {
        self.engine.stats()
    }

    /// Mirrors the head engine's stats progress onto the global
    /// metrics registry (see [`InferenceEngine::observe_metrics`]).
    pub fn observe_metrics(&mut self) {
        self.engine.observe_metrics();
    }
}

/// One worker's slice of the cluster: a full engine that owns the
/// objects with `tag % num_workers == index` and receives its reader
/// state from the head every epoch.
pub struct ClusterWorker<P: LocationPrior, S: ReadRateModel = rfid_model::LogisticSensorModel> {
    engine: InferenceEngine<P, S>,
}

impl<P: LocationPrior, S: ReadRateModel> ClusterWorker<P, S> {
    /// Wraps an engine built with the *same* configuration (seed
    /// included) as the single-process reference. The worker's own
    /// engine RNG is never consumed — all engine-RNG draws happen on
    /// the head.
    pub fn new(engine: InferenceEngine<P, S>) -> Self {
        Self { engine }
    }

    /// Runs one epoch over this worker's partition: installs the
    /// reader snapshot, steps the objects named (or spatially
    /// activated) this epoch, and appends the due events (sorted by
    /// tag). Returns one report per stepped object, in tag order.
    pub fn process_epoch(
        &mut self,
        plan: &EpochPlan,
        index: usize,
        events: &mut Vec<LocationEvent>,
    ) -> Vec<TaskReport> {
        let e = &mut self.engine;
        let epoch = plan.epoch;
        let readings = &plan.readings[index];
        e.stats.epochs += 1;
        e.stats.readings += readings.len() as u64;
        let nr = plan.reader.len();
        e.reader = Some(ReaderFilter::from_parts(
            plan.reader.clone(),
            vec![0.0; nr],
            0,
        ));
        // ingest, minus the reader update the head already ran: the
        // plan's readings are all objects this worker owns
        e.shelf_read.clear();
        for shard in &mut e.shards {
            shard.object_read.clear();
        }
        for tag in readings {
            e.shards[shard_index(e.num_shards, *tag)]
                .object_read
                .push(*tag);
        }
        for shard in &mut e.shards {
            shard.object_read.sort_unstable();
            shard.object_read.dedup();
        }
        e.support_tee = Some(Vec::new());
        e.infer(epoch, &plan.reader_est);
        let rows = e.support_tee.take().unwrap_or_default();
        let mut reports = Vec::with_capacity(rows.len());
        for (tag, support) in rows {
            let reader_hist = if plan.will_resample {
                let mut hist = vec![0u32; nr];
                let Some(ObjectState {
                    belief: Belief::Active(f),
                    ..
                }) = e.shards[shard_index(e.num_shards, tag)].objects.get(&tag)
                else {
                    unreachable!("a stepped object ends the epoch active");
                };
                for &r in &f.soa().reader_idx {
                    hist[r as usize] += 1;
                }
                hist
            } else {
                Vec::new()
            };
            reports.push(TaskReport {
                tag,
                support,
                reader_hist,
            });
        }
        // due events, exactly as the single-process emit stage (events
        // precede the resample there, so they are final already)
        for shard in &mut e.shards {
            shard.policy.due_into(epoch, &mut shard.due);
        }
        let before = events.len();
        e.emit_due_events(epoch, events);
        e.stats.events_emitted += (events.len() - before) as u64;
        reports
    }

    /// Completes the epoch after the head's resample decision:
    /// `directive` must be `Some` exactly when the plan announced
    /// `will_resample`. Applies the remap with the head's draws, swaps
    /// in the post-resample reader, then runs the compression sweep.
    pub fn apply_resample(&mut self, epoch: Epoch, directive: Option<&ResampleDirective>) {
        let e = &mut self.engine;
        if let Some(d) = directive {
            e.stats.reader_resamples += 1;
            let by_tag: std::collections::HashMap<TagId, &[u32]> = d
                .draws
                .iter()
                .map(|(tag, vals)| (*tag, vals.as_slice()))
                .collect();
            for i in 0..e.active.len() {
                let tag = e.active[i];
                let shard = &mut e.shards[shard_index(e.num_shards, tag)];
                if let Some(ObjectState {
                    belief: Belief::Active(f),
                    ..
                }) = shard.objects.get_mut(&tag)
                {
                    let vals = by_tag.get(&tag).copied().unwrap_or(&[]);
                    let mut next = vals.iter();
                    f.apply_reader_remap_with(&d.remap, || {
                        *next
                            .next()
                            .expect("one replacement draw per dead ancestor pointer")
                    });
                    debug_assert!(next.next().is_none(), "unconsumed replacement draws");
                }
            }
            let nr = d.reader.len();
            e.reader = Some(ReaderFilter::from_parts(d.reader.clone(), vec![0.0; nr], 0));
        }
        e.run_compression_sweep(epoch);
        e.refresh_per_shard_stats();
    }

    /// Flushes pending reports at end of trace (tag-sorted, like every
    /// per-epoch event list).
    pub fn finalize_into(&mut self, epoch: Epoch, events: &mut Vec<LocationEvent>) {
        self.engine.finalize_into(epoch, events);
    }

    /// The worker engine's statistics (its partition only).
    pub fn stats(&self) -> &EngineStats {
        self.engine.stats()
    }

    /// Mirrors the worker engine's stats progress onto the global
    /// metrics registry (see [`InferenceEngine::observe_metrics`]).
    pub fn observe_metrics(&mut self) {
        self.engine.observe_metrics();
    }
}
