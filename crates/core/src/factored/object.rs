//! The per-object side of the factored filter.
//!
//! Each object owns a small particle set; every particle carries a
//! pointer to a reader particle (Fig. 3(b)/(c)). The object's factored
//! weight `w_ti` is kept per particle; estimates and resampling use the
//! *joint* weight — object weight times the pointed-to reader weight —
//! which is exactly what expanding the factorization (Eq. 5) would give.
//!
//! Pointers are only meaningful while the reader particle list is
//! unchanged; the engine refreshes them (by sampling reader indices
//! proportionally to the current reader weights) the first time an
//! object is processed in an epoch. This keeps inactive objects free of
//! bookkeeping — the point of spatial indexing is that they are not
//! touched at all.

use crate::exec::StepScratch;
use crate::factored::reader::ReaderFilter;
use crate::particle::{
    effective_sample_size, effective_sample_size_iter, effective_sample_size_probs, log_normalize,
    systematic_resample, systematic_resample_counts, ObjectParticle, ParticleSoa,
};
use rand::Rng;
use rfid_geom::{Point3, Pose};
use rfid_model::object::LocationPrior;
use rfid_model::sensor::ReadRateModel;
use rfid_model::table::LikelihoodTable;
use rfid_model::JointModel;

/// A per-object particle filter.
///
/// Particles live in struct-of-arrays layout ([`ParticleSoa`]): the
/// weight, support, ESS, resample, and moment loops of the fused step
/// each stream over one or two contiguous `f64` columns, which is what
/// lets them autovectorize. Reference (seed) methods and external
/// consumers that want whole particles go through
/// [`iter_particles`](Self::iter_particles) /
/// [`soa`](Self::soa).
#[derive(Debug, Clone)]
pub struct ObjectFilter {
    soa: ParticleSoa,
    /// Epoch stamp of the last pointer refresh (engine-managed).
    pointer_stamp: u64,
    resample_count: u64,
}

/// What one fused weight/resample/estimate step produced.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Whether the joint ESS dropped below the threshold and the
    /// particle set was resampled.
    pub resampled: bool,
    /// Posterior mean and per-axis variance under the joint weights.
    pub estimate: (Point3, [f64; 3]),
}

/// Samples a point uniformly over a cone originating at `pose`
/// (§IV-A's sensor-model-based initialization): distance up to `range`,
/// bearing within `± half_angle` of the heading. Area-uniform in the
/// XY plane; `z` is kept at the reader's height (tags share a height in
/// the paper's scenarios).
pub fn sample_cone<R: Rng + ?Sized>(
    pose: &Pose,
    range: f64,
    half_angle: f64,
    rng: &mut R,
) -> Point3 {
    let d = range * rng.gen::<f64>().sqrt();
    let ang = pose.phi + half_angle * (2.0 * rng.gen::<f64>() - 1.0);
    Point3::new(
        pose.pos.x + d * ang.cos(),
        pose.pos.y + d * ang.sin(),
        pose.pos.z,
    )
}

/// Draws a cone sample restricted to the legal object space when a
/// prior is supplied (§V: "shelf information helps restrict the area
/// for location sampling"): rejection-samples the cone against the
/// prior, falling back to the raw cone point when the intersection is
/// too small to hit.
pub fn sample_cone_in_prior<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
    pose: &Pose,
    range: f64,
    half_angle: f64,
    prior: Option<&P>,
    rng: &mut R,
) -> Point3 {
    match prior {
        None => sample_cone(pose, range, half_angle, rng),
        Some(p) => {
            for _ in 0..30 {
                let cand = sample_cone(pose, range, half_angle, rng);
                if p.contains(&cand) {
                    return cand;
                }
            }
            sample_cone(pose, range, half_angle, rng)
        }
    }
}

impl ObjectFilter {
    /// Sensor-model-based initialization: `n` particles sampled from
    /// cones at reader particles (reader particle drawn per-object
    /// particle, proportionally to reader weights), restricted to the
    /// legal object space when `prior` is supplied.
    pub fn init_from_cone<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        reader: &ReaderFilter,
        range: f64,
        half_angle: f64,
        n: usize,
        stamp: u64,
        prior: Option<&P>,
        rng: &mut R,
    ) -> Self {
        // one O(reader) CDF build, then O(log reader) per draw — picks
        // the same indices as per-particle `sample_index` scans
        let mut cdf = Vec::new();
        reader.sampling_cdf_into(&mut cdf);
        Self::init_from_cone_with(reader, &cdf, range, half_angle, n, stamp, prior, rng)
    }

    /// [`init_from_cone`](Self::init_from_cone) with a prebuilt reader
    /// CDF (see [`ReaderFilter::sampling_cdf_into`]) — the engine's
    /// hot path, which builds the CDF once per epoch.
    #[allow(clippy::too_many_arguments)] // init_from_cone + the CDF
    pub fn init_from_cone_with<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        reader: &ReaderFilter,
        cdf: &[f64],
        range: f64,
        half_angle: f64,
        n: usize,
        stamp: u64,
        prior: Option<&P>,
        rng: &mut R,
    ) -> Self {
        debug_assert!(n >= 1, "object filters are never empty");
        let uniform = -(n as f64).ln();
        let mut soa = ParticleSoa::with_capacity(n);
        for _ in 0..n {
            let j = reader.sample_index_with(cdf, rng);
            soa.push(ObjectParticle {
                loc: sample_cone_in_prior(reader.pose_of(j), range, half_angle, prior, rng),
                reader_idx: j,
                log_w: uniform,
            });
        }
        Self {
            soa,
            pointer_stamp: stamp,
            resample_count: 0,
        }
    }

    /// Rebuilds a filter from an explicit particle cloud (used by
    /// belief decompression).
    pub fn from_particles(particles: Vec<ObjectParticle>, stamp: u64) -> Self {
        debug_assert!(!particles.is_empty(), "object filters are never empty");
        Self {
            soa: ParticleSoa::from_aos(&particles),
            pointer_stamp: stamp,
            resample_count: 0,
        }
    }

    /// Rebuilds a filter from checkpointed parts, preserving the
    /// pointer stamp and resample counter exactly — unlike
    /// [`from_particles`](Self::from_particles), which is a fresh
    /// start for decompression.
    pub fn from_parts(particles: Vec<ObjectParticle>, pointer_stamp: u64, resamples: u64) -> Self {
        debug_assert!(!particles.is_empty(), "object filters are never empty");
        Self {
            soa: ParticleSoa::from_aos(&particles),
            pointer_stamp,
            resample_count: resamples,
        }
    }

    /// The particle columns (struct-of-arrays layout).
    pub fn soa(&self) -> &ParticleSoa {
        &self.soa
    }

    /// The particles, materialized one at a time from the columns —
    /// for consumers (checkpointing, diagnostics, tests) that want
    /// whole `ObjectParticle` values.
    pub fn iter_particles(&self) -> impl Iterator<Item = ObjectParticle> + '_ {
        self.soa.iter()
    }

    /// Epoch stamp of the last pointer refresh (checkpointing).
    pub fn pointer_stamp(&self) -> u64 {
        self.pointer_stamp
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.soa.len()
    }

    /// Whether the filter has no particles. Never true in practice —
    /// every construction site `debug_assert!`s non-emptiness — but the
    /// answer comes from the particle set, not a hardcoded constant.
    pub fn is_empty(&self) -> bool {
        self.soa.is_empty()
    }

    /// Number of resampling events (diagnostics).
    pub fn resample_count(&self) -> u64 {
        self.resample_count
    }

    /// Refreshes reader pointers if they are older than `stamp`:
    /// each particle re-draws a reader index proportionally to the
    /// current reader weights.
    pub fn refresh_pointers<R: Rng + ?Sized>(
        &mut self,
        reader: &ReaderFilter,
        stamp: u64,
        rng: &mut R,
    ) {
        if self.pointer_stamp == stamp {
            return;
        }
        let mut cdf = Vec::new();
        reader.sampling_cdf_into(&mut cdf);
        self.refresh_pointers_with(reader, &cdf, stamp, rng);
    }

    /// [`refresh_pointers`](Self::refresh_pointers) with a prebuilt
    /// reader CDF — the engine's allocation-free hot path (one CDF
    /// build per epoch serves every active object, since the reader
    /// weights are frozen while objects step). Draws the same indices
    /// as the buffer-less version for the same RNG stream.
    pub fn refresh_pointers_with<R: Rng + ?Sized>(
        &mut self,
        reader: &ReaderFilter,
        cdf: &[f64],
        stamp: u64,
        rng: &mut R,
    ) {
        if self.pointer_stamp == stamp {
            return;
        }
        for r in &mut self.soa.reader_idx {
            *r = reader.sample_index_with(cdf, rng);
        }
        self.pointer_stamp = stamp;
    }

    /// Applies a reader remap after reader resampling within the same
    /// epoch (pointers stay aligned without a full refresh).
    pub fn apply_reader_remap<R: Rng + ?Sized>(
        &mut self,
        remap: &crate::factored::reader::ReaderRemap,
        rng: &mut R,
    ) {
        self.apply_reader_remap_with(remap, || rng.gen_range(0..remap.num_new()));
    }

    /// [`ObjectFilter::apply_reader_remap`] with the dead-ancestor
    /// replacement draws supplied by the caller, in particle order. A
    /// cluster head replicates the engine-RNG draw sequence centrally
    /// and ships each worker its objects' values, so remote remaps stay
    /// bit-identical to the single-process engine.
    pub fn apply_reader_remap_with(
        &mut self,
        remap: &crate::factored::reader::ReaderRemap,
        mut replacement: impl FnMut() -> u32,
    ) {
        for r in &mut self.soa.reader_idx {
            *r = match remap.map(*r) {
                Some(new) => new,
                // ancestor died out: re-point uniformly (post-resample
                // reader weights are uniform anyway)
                None => replacement(),
            };
        }
    }

    /// Proposal step: each particle moves per the object location model
    /// (stays with probability `1 - α`, otherwise relocates uniformly
    /// under the prior).
    ///
    /// Relocation is only proposed on epochs where the object's tag was
    /// *read*: the paper's model carries no information about where a
    /// moved object went ("the new object location will be eventually
    /// inferred from the readings from that location"), so relocated
    /// particles are useful exactly when a reading is available to
    /// weight them — a relocation hypothesis far from the reader is
    /// killed by the read likelihood immediately. Proposing relocations
    /// on miss epochs would inject particles that a (near-)zero far
    /// -field read rate can never cull, and in a large warehouse a
    /// single such stray drags the posterior mean by feet.
    pub fn predict<S: ReadRateModel, P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        &mut self,
        model: &JointModel<S>,
        prior: &P,
        read: bool,
        rng: &mut R,
    ) {
        let alpha = model.object.alpha();
        if alpha <= 0.0 || !read {
            return;
        }
        for i in 0..self.soa.len() {
            let loc = self.soa.loc(i);
            let next = model.object.sample_next(&loc, prior, rng);
            self.soa.set_loc(i, next);
        }
    }

    /// The fused hot-path step: weight → (maybe) resample → estimate in
    /// one pass over the normalized joint weights, with every buffer
    /// supplied by the caller. Emits the same particle states and
    /// estimates as the unfused [`weight`](Self::weight) /
    /// [`maybe_resample`](Self::maybe_resample) /
    /// [`estimate`](Self::estimate) sequence (pinned bit-for-bit by
    /// `tests/fused_equivalence.rs`, exact-likelihood path) while
    /// computing the joint weights once instead of three times and
    /// performing **zero heap allocations** once `scratch` has warmed
    /// up.
    ///
    /// The weight pass is batched per reader cone: particle indices are
    /// counting-sorted by reader pointer so each reader's pose lookup
    /// and cone geometry is hoisted out of the per-particle loop, and —
    /// when `table` is supplied — the sensor's `exp()` is replaced by a
    /// quantized [`LikelihoodTable`] cell load (the one deliberate
    /// numeric deviation; `None` keeps the exact bit-pinned path).
    /// The joint weights are exponentiated once into `scratch.probs`
    /// and shared by the support staging, the ESS decision, and the
    /// moment estimate — 3 `exp()` calls per particle per step instead
    /// of the previous 5.
    ///
    /// Reader support is *staged* into `support` (a zeroed,
    /// `reader.len()`-sized slice) rather than deposited into the
    /// reader directly, so steps for different objects can run on
    /// different threads and merge deterministically afterwards.
    #[allow(clippy::too_many_arguments)] // the fused step's full input set
    pub fn step_fused<S: ReadRateModel, R: Rng + ?Sized>(
        &mut self,
        model: &JointModel<S>,
        reader: &ReaderFilter,
        read: bool,
        ess_frac: f64,
        table: Option<&LikelihoodTable>,
        trig: Option<&[[f64; 2]]>,
        scratch: &mut StepScratch,
        support: &mut [f64],
        rng: &mut R,
    ) -> StepOutcome {
        debug_assert_eq!(support.len(), reader.len());
        let n = self.soa.len();

        // -- weight (w_ti of Eq. 5), normalize in place ----------------
        self.accumulate_weights(model, reader, read, table, trig, scratch);
        log_normalize(&mut self.soa.log_w);

        // -- the single joint-weight pass ------------------------------
        Self::fill_joint(&self.soa, reader, &mut scratch.joint);
        Self::fill_probs(&scratch.joint, &mut scratch.probs);

        // stage per-reader support (probability space)
        for (&r, &p) in self.soa.reader_idx.iter().zip(scratch.probs.iter()) {
            support[r as usize] += p;
        }

        // -- resample on low joint ESS, in place -----------------------
        let resampled = effective_sample_size_probs(&scratch.probs) < ess_frac * n as f64;
        if resampled {
            systematic_resample_counts(&scratch.joint, n, &mut scratch.counts, rng);
            self.soa.reorder_by_counts(&mut scratch.counts);
            let uniform = -(n as f64).ln();
            for w in &mut self.soa.log_w {
                *w = uniform;
            }
            self.resample_count += 1;
            // the joint weights changed with the particle set: recompute
            // for the estimate (the only second pass, resample epochs only)
            Self::fill_joint(&self.soa, reader, &mut scratch.joint);
            Self::fill_probs(&scratch.joint, &mut scratch.probs);
        }

        // -- estimate under the current joint weights ------------------
        let estimate = Self::moments(&self.soa, &scratch.probs);
        StepOutcome {
            resampled,
            estimate,
        }
    }

    /// The batched weight pass. Each particle's increment is identical
    /// to the naive
    /// `log_w += object_log_weight(pose_of(reader_idx), loc, read)`
    /// regardless of evaluation order, so both strategies below are
    /// bit-exact and interchangeable:
    ///
    /// * **Grouped** (particle count ≥ [`GROUP_MIN_RATIO`] × reader
    ///   count): counting-sorts particle indices by reader pointer into
    ///   `scratch.order` (groups delimited by `scratch.group_start`),
    ///   then walks one reader cone's particles at a time with the pose
    ///   lookup hoisted out of the inner loop.
    /// * **Linear** (small groups): one sequential sweep over the
    ///   coordinate/pointer/weight columns. When the average group is
    ///   only a couple of particles, the counting sort plus the
    ///   scattered gather costs more than the hoisted lookup saves.
    fn accumulate_weights<S: ReadRateModel>(
        &mut self,
        model: &JointModel<S>,
        reader: &ReaderFilter,
        read: bool,
        table: Option<&LikelihoodTable>,
        trig: Option<&[[f64; 2]]>,
        scratch: &mut StepScratch,
    ) {
        let n = self.soa.len();
        let nr = reader.len();

        /// Minimum average particles-per-reader-group for the grouped
        /// pass to pay for its counting sort (measured on the
        /// `experiments -- throughput` workload). The paper's operating
        /// point (1000 particles, 100 reader particles) groups; sparse
        /// clouds sweep linearly.
        const GROUP_MIN_RATIO: usize = 8;

        // Heading cosine/sine per reader particle: from the per-epoch
        // table when the engine provides one, recomputed otherwise —
        // identical values, identical bits either way.
        let trig_of = |r: u32| -> [f64; 2] {
            match trig {
                Some(t) => t[r as usize],
                None => {
                    let phi = reader.pose_of(r).phi;
                    [phi.cos(), phi.sin()]
                }
            }
        };

        if n < nr * GROUP_MIN_RATIO {
            match table {
                None => {
                    for i in 0..n {
                        let r = self.soa.reader_idx[i];
                        let pose = reader.pose_of(r);
                        let [cph, sph] = trig_of(r);
                        let loc = self.soa.loc(i);
                        self.soa.log_w[i] +=
                            model.object_log_weight_pose(&pose.pos, cph, sph, &loc, read);
                    }
                }
                Some(t) => {
                    for i in 0..n {
                        let r = self.soa.reader_idx[i];
                        let pose = reader.pose_of(r);
                        let [cph, sph] = trig_of(r);
                        let loc = self.soa.loc(i);
                        let (d, th) = pose.range_bearing_with(cph, sph, &loc);
                        let ll = t
                            .lookup(d, th, read)
                            .unwrap_or_else(|| model.sensor.log_likelihood_dt(d, th, read));
                        self.soa.log_w[i] += ll;
                    }
                }
            }
            return;
        }

        // counting sort: histogram, prefix-sum, scatter
        scratch.group_start.clear();
        scratch.group_start.resize(nr + 1, 0);
        for &r in &self.soa.reader_idx {
            scratch.group_start[r as usize + 1] += 1;
        }
        for j in 1..=nr {
            scratch.group_start[j] += scratch.group_start[j - 1];
        }
        scratch.cursors.clear();
        scratch
            .cursors
            .extend_from_slice(&scratch.group_start[..nr]);
        scratch.order.clear();
        scratch.order.resize(n, 0);
        for (i, &r) in self.soa.reader_idx.iter().enumerate() {
            let c = &mut scratch.cursors[r as usize];
            scratch.order[*c as usize] = i as u32;
            *c += 1;
        }

        for j in 0..nr {
            let start = scratch.group_start[j] as usize;
            let end = scratch.group_start[j + 1] as usize;
            if start == end {
                continue;
            }
            let pose = reader.pose_of(j as u32);
            let [cph, sph] = trig_of(j as u32);
            match table {
                None => {
                    for &i in &scratch.order[start..end] {
                        let i = i as usize;
                        let loc = self.soa.loc(i);
                        self.soa.log_w[i] +=
                            model.object_log_weight_pose(&pose.pos, cph, sph, &loc, read);
                    }
                }
                Some(t) => {
                    for &i in &scratch.order[start..end] {
                        let i = i as usize;
                        let loc = self.soa.loc(i);
                        let (d, th) = pose.range_bearing_with(cph, sph, &loc);
                        let ll = t
                            .lookup(d, th, read)
                            .unwrap_or_else(|| model.sensor.log_likelihood_dt(d, th, read));
                        self.soa.log_w[i] += ll;
                    }
                }
            }
        }
    }

    /// Exponentiates the normalized joint log weights into `probs` —
    /// the shared probability-space mirror.
    fn fill_probs(joint: &[f64], probs: &mut Vec<f64>) {
        probs.clear();
        probs.extend(joint.iter().map(|w| w.exp()));
    }

    /// Posterior mean and per-axis variance given probability-space
    /// joint weights aligned with the particle columns. One streaming
    /// pass per axis per moment over two contiguous `f64` slices —
    /// the accumulation order per axis matches the old interleaved
    /// AoS loop exactly (each axis only ever summed its own products).
    fn moments(soa: &ParticleSoa, w: &[f64]) -> (Point3, [f64; 3]) {
        let mut mean = Point3::origin();
        for (wi, x) in w.iter().zip(&soa.xs) {
            mean.x += wi * x;
        }
        for (wi, y) in w.iter().zip(&soa.ys) {
            mean.y += wi * y;
        }
        for (wi, z) in w.iter().zip(&soa.zs) {
            mean.z += wi * z;
        }
        let mut var = [0.0f64; 3];
        for (wi, x) in w.iter().zip(&soa.xs) {
            var[0] += wi * (x - mean.x) * (x - mean.x);
        }
        for (wi, y) in w.iter().zip(&soa.ys) {
            var[1] += wi * (y - mean.y) * (y - mean.y);
        }
        for (wi, z) in w.iter().zip(&soa.zs) {
            var[2] += wi * (z - mean.z) * (z - mean.z);
        }
        (mean, var)
    }

    /// [`estimate`](Self::estimate) into caller-owned scratch — same
    /// result, no allocation.
    pub fn estimate_with(
        &self,
        reader: &ReaderFilter,
        scratch: &mut StepScratch,
    ) -> (Point3, [f64; 3]) {
        Self::fill_joint(&self.soa, reader, &mut scratch.joint);
        Self::fill_probs(&scratch.joint, &mut scratch.probs);
        Self::moments(&self.soa, &scratch.probs)
    }

    /// Effective sample size of the (normalized) object-factor weights,
    /// computed in one streaming pass — no buffer.
    pub fn object_ess(&self) -> f64 {
        effective_sample_size_iter(self.soa.log_w.iter().copied())
    }

    /// Writes the normalized joint (object factor × reader factor) log
    /// weights into `joint` — the buffer-reusing core shared by the
    /// fused step and [`estimate_with`](Self::estimate_with).
    fn fill_joint(soa: &ParticleSoa, reader: &ReaderFilter, joint: &mut Vec<f64>) {
        joint.clear();
        joint.extend(
            soa.log_w
                .iter()
                .zip(soa.reader_idx.iter())
                .map(|(&w, &r)| w + reader.log_weight_of(r)),
        );
        log_normalize(joint);
    }

    /// Weighting step (the `w_ti` factor of Eq. 5): multiplies each
    /// particle's weight by the sensor likelihood of the observed
    /// outcome under its own reader hypothesis, renormalizes, and
    /// deposits per-reader support (the summed joint weight mass of the
    /// object particles pointing at each reader particle).
    ///
    /// Together with [`maybe_resample`](Self::maybe_resample) and
    /// [`estimate`](Self::estimate) this is the *reference* (seed)
    /// step path; the engine's hot path runs the allocation-free
    /// [`step_fused`](Self::step_fused), which is pinned to emit
    /// identical results.
    pub fn weight<S: ReadRateModel>(
        &mut self,
        model: &JointModel<S>,
        reader: &mut ReaderFilter,
        read: bool,
    ) {
        for i in 0..self.soa.len() {
            let pose = reader.pose_of(self.soa.reader_idx[i]);
            let loc = self.soa.loc(i);
            self.soa.log_w[i] += model.object_log_weight(pose, &loc, read);
        }
        self.normalize();
        // deposit support for instrumented reader resampling
        let joint = self.normalized_joint_weights(reader);
        for (&r, w) in self.soa.reader_idx.iter().zip(joint) {
            reader.add_support(r, w);
        }
    }

    /// Normalized joint weights (object factor × reader factor), in
    /// probability space.
    pub fn normalized_joint_weights(&self, reader: &ReaderFilter) -> Vec<f64> {
        let mut w: Vec<f64> = self
            .soa
            .log_w
            .iter()
            .zip(self.soa.reader_idx.iter())
            .map(|(&lw, &r)| lw + reader.log_weight_of(r))
            .collect();
        log_normalize(&mut w);
        w.into_iter().map(f64::exp).collect()
    }

    /// Posterior mean and per-axis variance under the joint weights.
    pub fn estimate(&self, reader: &ReaderFilter) -> (Point3, [f64; 3]) {
        let w = self.normalized_joint_weights(reader);
        Self::moments(&self.soa, &w)
    }

    /// The particle cloud as `(weight, location)` pairs under joint
    /// weights — the input to belief compression.
    pub fn weighted_cloud(&self, reader: &ReaderFilter) -> Vec<(f64, Point3)> {
        self.normalized_joint_weights(reader)
            .into_iter()
            .zip(self.soa.iter())
            .map(|(w, p)| (w, p.loc))
            .collect()
    }

    /// Resamples by joint weight when the joint ESS drops below
    /// `ess_frac * n`. Reader pointers are carried along with the
    /// surviving particles, which concentrates object mass on good
    /// reader hypotheses — the factored analogue of joint resampling.
    pub fn maybe_resample<R: Rng + ?Sized>(
        &mut self,
        reader: &ReaderFilter,
        ess_frac: f64,
        rng: &mut R,
    ) -> bool {
        let n = self.soa.len();
        let mut joint: Vec<f64> = self
            .soa
            .log_w
            .iter()
            .zip(self.soa.reader_idx.iter())
            .map(|(&lw, &r)| lw + reader.log_weight_of(r))
            .collect();
        log_normalize(&mut joint);
        if effective_sample_size(&joint) >= ess_frac * n as f64 {
            return false;
        }
        let ancestry = systematic_resample(&joint, n, rng);
        let uniform = -(n as f64).ln();
        let mut next = ParticleSoa::with_capacity(n);
        for i in ancestry {
            next.push(ObjectParticle {
                log_w: uniform,
                ..self.soa.get(i as usize)
            });
        }
        self.soa = next;
        self.resample_count += 1;
        true
    }

    /// §IV-A re-detection handling: keeps the better half of the
    /// particles and re-initializes the other half in a cone at the
    /// current reader, then resets weights to uniform so "over time
    /// weighting and resampling will favor the particles close to the
    /// object's true location".
    pub fn respawn_half<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        &mut self,
        reader: &ReaderFilter,
        range: f64,
        half_angle: f64,
        prior: Option<&P>,
        rng: &mut R,
    ) {
        let mut cdf = Vec::new();
        reader.sampling_cdf_into(&mut cdf);
        self.respawn_half_with(reader, &cdf, range, half_angle, prior, rng);
    }

    /// [`respawn_half`](Self::respawn_half) with a prebuilt reader CDF
    /// (the engine's per-epoch one).
    pub fn respawn_half_with<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        &mut self,
        reader: &ReaderFilter,
        cdf: &[f64],
        range: f64,
        half_angle: f64,
        prior: Option<&P>,
        rng: &mut R,
    ) {
        let n = self.soa.len();
        let joint = self.normalized_joint_weights(reader);
        // order particle indices by joint weight, worst first
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            joint[a]
                .partial_cmp(&joint[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let uniform = -(n as f64).ln();
        for &i in order.iter().take(n / 2) {
            let j = reader.sample_index_with(cdf, rng);
            self.soa.set(
                i,
                ObjectParticle {
                    loc: sample_cone_in_prior(reader.pose_of(j), range, half_angle, prior, rng),
                    reader_idx: j,
                    log_w: uniform,
                },
            );
        }
        for &i in order.iter().skip(n / 2) {
            self.soa.log_w[i] = uniform;
        }
    }

    fn normalize(&mut self) {
        log_normalize(&mut self.soa.log_w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// No prior restriction (tests exercise the raw cone).
    const NO_PRIOR: Option<&BoxPrior> = None;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_geom::{Aabb, Vec3};
    use rfid_model::object::BoxPrior;
    use rfid_model::{JointModel, ModelParams};

    fn model() -> JointModel {
        JointModel::new(ModelParams::default_warehouse())
    }

    fn reader_at(pose: Pose, n: usize) -> ReaderFilter {
        ReaderFilter::new(n, pose)
    }

    fn prior() -> BoxPrior {
        BoxPrior::new(Aabb::new(
            Point3::new(-10.0, -10.0, 0.0),
            Point3::new(10.0, 10.0, 0.0),
        ))
    }

    #[test]
    fn cone_samples_inside_cone() {
        let mut rng = StdRng::seed_from_u64(1);
        let pose = Pose::new(Point3::new(1.0, 2.0, 0.0), 0.3);
        for _ in 0..500 {
            let p = sample_cone(&pose, 4.0, 0.5, &mut rng);
            let (d, th) = pose.range_bearing(&p);
            assert!(d <= 4.0 + 1e-9);
            assert!(th <= 0.5 + 1e-9, "theta {th}");
        }
    }

    #[test]
    fn init_spreads_particles_in_front_of_reader() {
        let mut rng = StdRng::seed_from_u64(2);
        let reader = reader_at(Pose::identity(), 20);
        let f = ObjectFilter::init_from_cone(&reader, 4.0, 0.6, 1000, 0, NO_PRIOR, &mut rng);
        assert_eq!(f.len(), 1000);
        // all particles forward of the reader
        for p in f.iter_particles() {
            assert!(p.loc.x >= -1e-9, "behind the reader: {:?}", p.loc);
        }
    }

    #[test]
    fn repeated_reads_from_two_poses_triangulate() {
        // Fig. 2(b): an object read from two reader positions gets its
        // particles concentrated in the intersection of the two cones.
        let mut rng = StdRng::seed_from_u64(3);
        let m = model();
        let truth = Point3::new(2.0, 1.0, 0.0);
        let pose1 = Pose::new(Point3::new(0.0, 0.0, 0.0), 0.0);
        let pose2 = Pose::new(Point3::new(0.0, 2.0, 0.0), 0.0);

        let mut reader = reader_at(pose1, 50);
        let mut f = ObjectFilter::init_from_cone(&reader, 6.0, 1.0, 2000, 0, NO_PRIOR, &mut rng);
        f.weight(&m, &mut reader, true);
        let (e1, _) = f.estimate(&reader);
        let err1 = e1.dist_xy(&truth);

        // second reading from pose2
        let mut reader2 = reader_at(pose2, 50);
        f.refresh_pointers(&reader2, 1, &mut rng);
        f.weight(&m, &mut reader2, true);
        f.maybe_resample(&reader2, 0.9, &mut rng);
        let (e2, _) = f.estimate(&reader2);
        let err2 = e2.dist_xy(&truth);
        assert!(
            err2 < err1 + 0.15,
            "second reading should help or hold: {err1} -> {err2}"
        );
        // and the cloud tightened along y (the second pose disambiguates y)
        assert!(e2.dist_xy(&truth) < 1.5, "err after two reads {err2}");
    }

    #[test]
    fn misses_push_particles_away_from_reader() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = model();
        let mut reader = reader_at(Pose::identity(), 20);
        let mut f = ObjectFilter::init_from_cone(&reader, 6.0, 1.0, 2000, 0, NO_PRIOR, &mut rng);
        let (before, _) = f.estimate(&reader);
        for _ in 0..5 {
            f.weight(&m, &mut reader, false);
        }
        let (after, _) = f.estimate(&reader);
        assert!(
            after.dist(&Point3::origin()) > before.dist(&Point3::origin()),
            "misses should push the estimate outward: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn resample_concentrates_on_heavy_particles() {
        let mut rng = StdRng::seed_from_u64(5);
        let reader = reader_at(Pose::identity(), 10);
        let particles: Vec<ObjectParticle> = (0..100)
            .map(|i| ObjectParticle {
                loc: Point3::new(i as f64, 0.0, 0.0),
                reader_idx: 0,
                log_w: if i == 42 { 0.0 } else { -60.0 },
            })
            .collect();
        let mut f = ObjectFilter::from_particles(particles, 0);
        assert!(f.maybe_resample(&reader, 0.5, &mut rng));
        assert_eq!(f.resample_count(), 1);
        let at_42 = f
            .iter_particles()
            .filter(|p| (p.loc.x - 42.0).abs() < 1e-9)
            .count();
        assert!(
            at_42 > 95,
            "resample should clone the heavy particle, got {at_42}"
        );
    }

    #[test]
    fn respawn_half_moves_low_weight_half() {
        let mut rng = StdRng::seed_from_u64(6);
        let reader = reader_at(Pose::new(Point3::new(100.0, 100.0, 0.0), 0.0), 10);
        let particles: Vec<ObjectParticle> = (0..100)
            .map(|i| ObjectParticle {
                loc: Point3::new(0.0, i as f64 * 0.01, 0.0),
                reader_idx: 0,
                log_w: if i < 50 { -0.1 } else { -30.0 },
            })
            .collect();
        let mut f = ObjectFilter::from_particles(particles, 0);
        f.respawn_half(&reader, 4.0, 0.6, NO_PRIOR, &mut rng);
        // half the particles moved near the (distant) reader
        let near_reader = f
            .iter_particles()
            .filter(|p| p.loc.dist(&Point3::new(100.0, 100.0, 0.0)) < 6.0)
            .count();
        assert_eq!(near_reader, 50);
        // the surviving half is the previously-heavy half
        let near_origin = f
            .iter_particles()
            .filter(|p| p.loc.x.abs() < 1.0 && p.loc.y < 0.6)
            .count();
        assert_eq!(near_origin, 50);
    }

    #[test]
    fn pointer_refresh_is_idempotent_per_stamp() {
        let mut rng = StdRng::seed_from_u64(7);
        let reader = reader_at(Pose::identity(), 10);
        let mut f = ObjectFilter::init_from_cone(&reader, 4.0, 0.5, 100, 0, NO_PRIOR, &mut rng);
        f.refresh_pointers(&reader, 5, &mut rng);
        let ptrs: Vec<u32> = f.iter_particles().map(|p| p.reader_idx).collect();
        f.refresh_pointers(&reader, 5, &mut rng); // same stamp: no-op
        let ptrs2: Vec<u32> = f.iter_particles().map(|p| p.reader_idx).collect();
        assert_eq!(ptrs, ptrs2);
    }

    #[test]
    fn predict_with_zero_alpha_is_noop() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut params = ModelParams::default_warehouse();
        params.object.alpha = 0.0;
        let m = JointModel::new(params);
        let reader = reader_at(Pose::identity(), 5);
        let mut f = ObjectFilter::init_from_cone(&reader, 4.0, 0.5, 50, 0, NO_PRIOR, &mut rng);
        let before: Vec<Point3> = f.iter_particles().map(|p| p.loc).collect();
        f.predict(&m, &prior(), true, &mut rng);
        let after: Vec<Point3> = f.iter_particles().map(|p| p.loc).collect();
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b, a);
        }
    }

    #[test]
    fn weight_deposits_support_on_reader() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = model();
        let mut reader = reader_at(Pose::identity(), 10);
        let mut f = ObjectFilter::init_from_cone(&reader, 4.0, 0.5, 100, 0, NO_PRIOR, &mut rng);
        f.weight(&m, &mut reader, true);
        let total: f64 = reader.support.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "support mass {total}");
    }

    #[test]
    fn remap_reassigns_dead_pointers() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = model();
        let mut reader = reader_at(Pose::identity(), 20);
        let mut f = ObjectFilter::init_from_cone(&reader, 4.0, 0.5, 200, 0, NO_PRIOR, &mut rng);
        // degenerate reader weights to force a resample
        reader.predict(&m, Some(Vec3::zero()), None, &mut rng);
        for p in reader.particles.iter_mut() {
            p.log_w = -60.0;
        }
        reader.particles[3].log_w = 0.0;
        let remap = reader.maybe_resample(0.5, &mut rng).expect("resample");
        f.apply_reader_remap(&remap, &mut rng);
        for p in f.iter_particles() {
            assert!(p.reader_idx < remap.num_new());
        }
    }
}
