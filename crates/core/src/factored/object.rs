//! The per-object side of the factored filter.
//!
//! Each object owns a small particle set; every particle carries a
//! pointer to a reader particle (Fig. 3(b)/(c)). The object's factored
//! weight `w_ti` is kept per particle; estimates and resampling use the
//! *joint* weight — object weight times the pointed-to reader weight —
//! which is exactly what expanding the factorization (Eq. 5) would give.
//!
//! Pointers are only meaningful while the reader particle list is
//! unchanged; the engine refreshes them (by sampling reader indices
//! proportionally to the current reader weights) the first time an
//! object is processed in an epoch. This keeps inactive objects free of
//! bookkeeping — the point of spatial indexing is that they are not
//! touched at all.

use crate::exec::StepScratch;
use crate::factored::reader::ReaderFilter;
use crate::particle::{
    effective_sample_size, effective_sample_size_iter, log_normalize, log_normalize_by,
    reorder_by_counts, systematic_resample, systematic_resample_counts, ObjectParticle,
};
use rand::Rng;
use rfid_geom::{Point3, Pose};
use rfid_model::object::LocationPrior;
use rfid_model::sensor::ReadRateModel;
use rfid_model::JointModel;

/// A per-object particle filter.
#[derive(Debug, Clone)]
pub struct ObjectFilter {
    particles: Vec<ObjectParticle>,
    /// Epoch stamp of the last pointer refresh (engine-managed).
    pointer_stamp: u64,
    resample_count: u64,
}

/// What one fused weight/resample/estimate step produced.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Whether the joint ESS dropped below the threshold and the
    /// particle set was resampled.
    pub resampled: bool,
    /// Posterior mean and per-axis variance under the joint weights.
    pub estimate: (Point3, [f64; 3]),
}

/// Samples a point uniformly over a cone originating at `pose`
/// (§IV-A's sensor-model-based initialization): distance up to `range`,
/// bearing within `± half_angle` of the heading. Area-uniform in the
/// XY plane; `z` is kept at the reader's height (tags share a height in
/// the paper's scenarios).
pub fn sample_cone<R: Rng + ?Sized>(
    pose: &Pose,
    range: f64,
    half_angle: f64,
    rng: &mut R,
) -> Point3 {
    let d = range * rng.gen::<f64>().sqrt();
    let ang = pose.phi + half_angle * (2.0 * rng.gen::<f64>() - 1.0);
    Point3::new(
        pose.pos.x + d * ang.cos(),
        pose.pos.y + d * ang.sin(),
        pose.pos.z,
    )
}

/// Draws a cone sample restricted to the legal object space when a
/// prior is supplied (§V: "shelf information helps restrict the area
/// for location sampling"): rejection-samples the cone against the
/// prior, falling back to the raw cone point when the intersection is
/// too small to hit.
pub fn sample_cone_in_prior<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
    pose: &Pose,
    range: f64,
    half_angle: f64,
    prior: Option<&P>,
    rng: &mut R,
) -> Point3 {
    match prior {
        None => sample_cone(pose, range, half_angle, rng),
        Some(p) => {
            for _ in 0..30 {
                let cand = sample_cone(pose, range, half_angle, rng);
                if p.contains(&cand) {
                    return cand;
                }
            }
            sample_cone(pose, range, half_angle, rng)
        }
    }
}

impl ObjectFilter {
    /// Sensor-model-based initialization: `n` particles sampled from
    /// cones at reader particles (reader particle drawn per-object
    /// particle, proportionally to reader weights), restricted to the
    /// legal object space when `prior` is supplied.
    pub fn init_from_cone<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        reader: &ReaderFilter,
        range: f64,
        half_angle: f64,
        n: usize,
        stamp: u64,
        prior: Option<&P>,
        rng: &mut R,
    ) -> Self {
        // one O(reader) CDF build, then O(log reader) per draw — picks
        // the same indices as per-particle `sample_index` scans
        let mut cdf = Vec::new();
        reader.sampling_cdf_into(&mut cdf);
        Self::init_from_cone_with(reader, &cdf, range, half_angle, n, stamp, prior, rng)
    }

    /// [`init_from_cone`](Self::init_from_cone) with a prebuilt reader
    /// CDF (see [`ReaderFilter::sampling_cdf_into`]) — the engine's
    /// hot path, which builds the CDF once per epoch.
    #[allow(clippy::too_many_arguments)] // init_from_cone + the CDF
    pub fn init_from_cone_with<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        reader: &ReaderFilter,
        cdf: &[f64],
        range: f64,
        half_angle: f64,
        n: usize,
        stamp: u64,
        prior: Option<&P>,
        rng: &mut R,
    ) -> Self {
        debug_assert!(n >= 1, "object filters are never empty");
        let uniform = -(n as f64).ln();
        let particles = (0..n)
            .map(|_| {
                let j = reader.sample_index_with(cdf, rng);
                ObjectParticle {
                    loc: sample_cone_in_prior(reader.pose_of(j), range, half_angle, prior, rng),
                    reader_idx: j,
                    log_w: uniform,
                }
            })
            .collect();
        Self {
            particles,
            pointer_stamp: stamp,
            resample_count: 0,
        }
    }

    /// Rebuilds a filter from an explicit particle cloud (used by
    /// belief decompression).
    pub fn from_particles(particles: Vec<ObjectParticle>, stamp: u64) -> Self {
        debug_assert!(!particles.is_empty(), "object filters are never empty");
        Self {
            particles,
            pointer_stamp: stamp,
            resample_count: 0,
        }
    }

    /// Rebuilds a filter from checkpointed parts, preserving the
    /// pointer stamp and resample counter exactly — unlike
    /// [`from_particles`](Self::from_particles), which is a fresh
    /// start for decompression.
    pub fn from_parts(particles: Vec<ObjectParticle>, pointer_stamp: u64, resamples: u64) -> Self {
        debug_assert!(!particles.is_empty(), "object filters are never empty");
        Self {
            particles,
            pointer_stamp,
            resample_count: resamples,
        }
    }

    /// The particles.
    pub fn particles(&self) -> &[ObjectParticle] {
        &self.particles
    }

    /// Epoch stamp of the last pointer refresh (checkpointing).
    pub fn pointer_stamp(&self) -> u64 {
        self.pointer_stamp
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Whether the filter has no particles. Never true in practice —
    /// every construction site `debug_assert!`s non-emptiness — but the
    /// answer comes from the particle set, not a hardcoded constant.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Number of resampling events (diagnostics).
    pub fn resample_count(&self) -> u64 {
        self.resample_count
    }

    /// Refreshes reader pointers if they are older than `stamp`:
    /// each particle re-draws a reader index proportionally to the
    /// current reader weights.
    pub fn refresh_pointers<R: Rng + ?Sized>(
        &mut self,
        reader: &ReaderFilter,
        stamp: u64,
        rng: &mut R,
    ) {
        if self.pointer_stamp == stamp {
            return;
        }
        let mut cdf = Vec::new();
        reader.sampling_cdf_into(&mut cdf);
        self.refresh_pointers_with(reader, &cdf, stamp, rng);
    }

    /// [`refresh_pointers`](Self::refresh_pointers) with a prebuilt
    /// reader CDF — the engine's allocation-free hot path (one CDF
    /// build per epoch serves every active object, since the reader
    /// weights are frozen while objects step). Draws the same indices
    /// as the buffer-less version for the same RNG stream.
    pub fn refresh_pointers_with<R: Rng + ?Sized>(
        &mut self,
        reader: &ReaderFilter,
        cdf: &[f64],
        stamp: u64,
        rng: &mut R,
    ) {
        if self.pointer_stamp == stamp {
            return;
        }
        for p in &mut self.particles {
            p.reader_idx = reader.sample_index_with(cdf, rng);
        }
        self.pointer_stamp = stamp;
    }

    /// Applies a reader remap after reader resampling within the same
    /// epoch (pointers stay aligned without a full refresh).
    pub fn apply_reader_remap<R: Rng + ?Sized>(
        &mut self,
        remap: &crate::factored::reader::ReaderRemap,
        rng: &mut R,
    ) {
        for p in &mut self.particles {
            p.reader_idx = match remap.map(p.reader_idx) {
                Some(new) => new,
                // ancestor died out: re-point uniformly (post-resample
                // reader weights are uniform anyway)
                None => rng.gen_range(0..remap.num_new()),
            };
        }
    }

    /// Proposal step: each particle moves per the object location model
    /// (stays with probability `1 - α`, otherwise relocates uniformly
    /// under the prior).
    ///
    /// Relocation is only proposed on epochs where the object's tag was
    /// *read*: the paper's model carries no information about where a
    /// moved object went ("the new object location will be eventually
    /// inferred from the readings from that location"), so relocated
    /// particles are useful exactly when a reading is available to
    /// weight them — a relocation hypothesis far from the reader is
    /// killed by the read likelihood immediately. Proposing relocations
    /// on miss epochs would inject particles that a (near-)zero far
    /// -field read rate can never cull, and in a large warehouse a
    /// single such stray drags the posterior mean by feet.
    pub fn predict<S: ReadRateModel, P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        &mut self,
        model: &JointModel<S>,
        prior: &P,
        read: bool,
        rng: &mut R,
    ) {
        let alpha = model.object.alpha();
        if alpha <= 0.0 || !read {
            return;
        }
        for p in &mut self.particles {
            p.loc = model.object.sample_next(&p.loc, prior, rng);
        }
    }

    /// The fused hot-path step: weight → (maybe) resample → estimate in
    /// one pass over the normalized joint weights, with every buffer
    /// supplied by the caller. Emits the same particle states and
    /// estimates as the unfused [`weight`](Self::weight) /
    /// [`maybe_resample`](Self::maybe_resample) /
    /// [`estimate`](Self::estimate) sequence (pinned bit-for-bit by
    /// `tests/fused_equivalence.rs`) while computing the joint weights
    /// once instead of three times and performing **zero heap
    /// allocations** once `scratch` has warmed up.
    ///
    /// Reader support is *staged* into `support` (a zeroed,
    /// `reader.len()`-sized slice) rather than deposited into the
    /// reader directly, so steps for different objects can run on
    /// different threads and merge deterministically afterwards.
    #[allow(clippy::too_many_arguments)] // the fused step's full input set
    pub fn step_fused<S: ReadRateModel, R: Rng + ?Sized>(
        &mut self,
        model: &JointModel<S>,
        reader: &ReaderFilter,
        read: bool,
        ess_frac: f64,
        scratch: &mut StepScratch,
        support: &mut [f64],
        rng: &mut R,
    ) -> StepOutcome {
        debug_assert_eq!(support.len(), reader.len());
        let n = self.particles.len();

        // -- weight (w_ti of Eq. 5), normalize in place ----------------
        for p in &mut self.particles {
            let pose = reader.pose_of(p.reader_idx);
            p.log_w += model.object_log_weight(pose, &p.loc, read);
        }
        self.normalize_in_place();

        // -- the single joint-weight pass ------------------------------
        self.fill_joint(reader, &mut scratch.joint);

        // stage per-reader support (probability space)
        for (p, w) in self.particles.iter().zip(scratch.joint.iter()) {
            support[p.reader_idx as usize] += w.exp();
        }

        // -- resample on low joint ESS, in place -----------------------
        let resampled = effective_sample_size(&scratch.joint) < ess_frac * n as f64;
        if resampled {
            systematic_resample_counts(&scratch.joint, n, &mut scratch.counts, rng);
            reorder_by_counts(&mut self.particles, &mut scratch.counts);
            let uniform = -(n as f64).ln();
            for p in &mut self.particles {
                p.log_w = uniform;
            }
            self.resample_count += 1;
            // the joint weights changed with the particle set: recompute
            // for the estimate (the only second pass, resample epochs only)
            self.fill_joint(reader, &mut scratch.joint);
        }

        // -- estimate under the current joint weights ------------------
        for w in scratch.joint.iter_mut() {
            *w = w.exp();
        }
        let estimate = Self::moments(&self.particles, &scratch.joint);
        StepOutcome {
            resampled,
            estimate,
        }
    }

    /// Posterior mean and per-axis variance given probability-space
    /// joint weights aligned with `particles`.
    fn moments(particles: &[ObjectParticle], w: &[f64]) -> (Point3, [f64; 3]) {
        let mut mean = Point3::origin();
        for (p, wi) in particles.iter().zip(w) {
            mean.x += wi * p.loc.x;
            mean.y += wi * p.loc.y;
            mean.z += wi * p.loc.z;
        }
        let mut var = [0.0f64; 3];
        for (p, wi) in particles.iter().zip(w) {
            var[0] += wi * (p.loc.x - mean.x) * (p.loc.x - mean.x);
            var[1] += wi * (p.loc.y - mean.y) * (p.loc.y - mean.y);
            var[2] += wi * (p.loc.z - mean.z) * (p.loc.z - mean.z);
        }
        (mean, var)
    }

    /// [`estimate`](Self::estimate) into caller-owned scratch — same
    /// result, no allocation.
    pub fn estimate_with(
        &self,
        reader: &ReaderFilter,
        scratch: &mut StepScratch,
    ) -> (Point3, [f64; 3]) {
        self.fill_joint(reader, &mut scratch.joint);
        for w in scratch.joint.iter_mut() {
            *w = w.exp();
        }
        Self::moments(&self.particles, &scratch.joint)
    }

    /// Effective sample size of the (normalized) object-factor weights,
    /// computed in one streaming pass — no buffer.
    pub fn object_ess(&self) -> f64 {
        effective_sample_size_iter(self.particles.iter().map(|p| p.log_w))
    }

    /// Writes the normalized joint (object factor × reader factor) log
    /// weights into `joint` — the buffer-reusing core shared by the
    /// fused step and [`estimate_with`](Self::estimate_with).
    fn fill_joint(&self, reader: &ReaderFilter, joint: &mut Vec<f64>) {
        joint.clear();
        joint.extend(
            self.particles
                .iter()
                .map(|p| p.log_w + reader.log_weight_of(p.reader_idx)),
        );
        log_normalize(joint);
    }

    /// In-place log-normalization of the particle weights (the shared
    /// [`log_normalize_by`], projected onto `log_w`).
    fn normalize_in_place(&mut self) {
        log_normalize_by(&mut self.particles, |p| p.log_w, |p, w| p.log_w = w);
    }

    /// Weighting step (the `w_ti` factor of Eq. 5): multiplies each
    /// particle's weight by the sensor likelihood of the observed
    /// outcome under its own reader hypothesis, renormalizes, and
    /// deposits per-reader support (the summed joint weight mass of the
    /// object particles pointing at each reader particle).
    ///
    /// Together with [`maybe_resample`](Self::maybe_resample) and
    /// [`estimate`](Self::estimate) this is the *reference* (seed)
    /// step path; the engine's hot path runs the allocation-free
    /// [`step_fused`](Self::step_fused), which is pinned to emit
    /// identical results.
    pub fn weight<S: ReadRateModel>(
        &mut self,
        model: &JointModel<S>,
        reader: &mut ReaderFilter,
        read: bool,
    ) {
        for p in &mut self.particles {
            let pose = reader.pose_of(p.reader_idx);
            p.log_w += model.object_log_weight(pose, &p.loc, read);
        }
        self.normalize();
        // deposit support for instrumented reader resampling
        let joint = self.normalized_joint_weights(reader);
        for (p, w) in self.particles.iter().zip(joint) {
            reader.add_support(p.reader_idx, w);
        }
    }

    /// Normalized joint weights (object factor × reader factor), in
    /// probability space.
    pub fn normalized_joint_weights(&self, reader: &ReaderFilter) -> Vec<f64> {
        let mut w: Vec<f64> = self
            .particles
            .iter()
            .map(|p| p.log_w + reader.log_weight_of(p.reader_idx))
            .collect();
        log_normalize(&mut w);
        w.into_iter().map(f64::exp).collect()
    }

    /// Posterior mean and per-axis variance under the joint weights.
    pub fn estimate(&self, reader: &ReaderFilter) -> (Point3, [f64; 3]) {
        let w = self.normalized_joint_weights(reader);
        Self::moments(&self.particles, &w)
    }

    /// The particle cloud as `(weight, location)` pairs under joint
    /// weights — the input to belief compression.
    pub fn weighted_cloud(&self, reader: &ReaderFilter) -> Vec<(f64, Point3)> {
        self.normalized_joint_weights(reader)
            .into_iter()
            .zip(self.particles.iter())
            .map(|(w, p)| (w, p.loc))
            .collect()
    }

    /// Resamples by joint weight when the joint ESS drops below
    /// `ess_frac * n`. Reader pointers are carried along with the
    /// surviving particles, which concentrates object mass on good
    /// reader hypotheses — the factored analogue of joint resampling.
    pub fn maybe_resample<R: Rng + ?Sized>(
        &mut self,
        reader: &ReaderFilter,
        ess_frac: f64,
        rng: &mut R,
    ) -> bool {
        let n = self.particles.len();
        let mut joint: Vec<f64> = self
            .particles
            .iter()
            .map(|p| p.log_w + reader.log_weight_of(p.reader_idx))
            .collect();
        log_normalize(&mut joint);
        if effective_sample_size(&joint) >= ess_frac * n as f64 {
            return false;
        }
        let ancestry = systematic_resample(&joint, n, rng);
        let uniform = -(n as f64).ln();
        self.particles = ancestry
            .into_iter()
            .map(|i| ObjectParticle {
                log_w: uniform,
                ..self.particles[i as usize]
            })
            .collect();
        self.resample_count += 1;
        true
    }

    /// §IV-A re-detection handling: keeps the better half of the
    /// particles and re-initializes the other half in a cone at the
    /// current reader, then resets weights to uniform so "over time
    /// weighting and resampling will favor the particles close to the
    /// object's true location".
    pub fn respawn_half<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        &mut self,
        reader: &ReaderFilter,
        range: f64,
        half_angle: f64,
        prior: Option<&P>,
        rng: &mut R,
    ) {
        let mut cdf = Vec::new();
        reader.sampling_cdf_into(&mut cdf);
        self.respawn_half_with(reader, &cdf, range, half_angle, prior, rng);
    }

    /// [`respawn_half`](Self::respawn_half) with a prebuilt reader CDF
    /// (the engine's per-epoch one).
    pub fn respawn_half_with<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        &mut self,
        reader: &ReaderFilter,
        cdf: &[f64],
        range: f64,
        half_angle: f64,
        prior: Option<&P>,
        rng: &mut R,
    ) {
        let n = self.particles.len();
        let joint = self.normalized_joint_weights(reader);
        // order particle indices by joint weight, worst first
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            joint[a]
                .partial_cmp(&joint[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let uniform = -(n as f64).ln();
        for &i in order.iter().take(n / 2) {
            let j = reader.sample_index_with(cdf, rng);
            self.particles[i] = ObjectParticle {
                loc: sample_cone_in_prior(reader.pose_of(j), range, half_angle, prior, rng),
                reader_idx: j,
                log_w: uniform,
            };
        }
        for &i in order.iter().skip(n / 2) {
            self.particles[i].log_w = uniform;
        }
    }

    fn normalize(&mut self) {
        let mut w: Vec<f64> = self.particles.iter().map(|p| p.log_w).collect();
        log_normalize(&mut w);
        for (p, nw) in self.particles.iter_mut().zip(w) {
            p.log_w = nw;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// No prior restriction (tests exercise the raw cone).
    const NO_PRIOR: Option<&BoxPrior> = None;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_geom::{Aabb, Vec3};
    use rfid_model::object::BoxPrior;
    use rfid_model::{JointModel, ModelParams};

    fn model() -> JointModel {
        JointModel::new(ModelParams::default_warehouse())
    }

    fn reader_at(pose: Pose, n: usize) -> ReaderFilter {
        ReaderFilter::new(n, pose)
    }

    fn prior() -> BoxPrior {
        BoxPrior::new(Aabb::new(
            Point3::new(-10.0, -10.0, 0.0),
            Point3::new(10.0, 10.0, 0.0),
        ))
    }

    #[test]
    fn cone_samples_inside_cone() {
        let mut rng = StdRng::seed_from_u64(1);
        let pose = Pose::new(Point3::new(1.0, 2.0, 0.0), 0.3);
        for _ in 0..500 {
            let p = sample_cone(&pose, 4.0, 0.5, &mut rng);
            let (d, th) = pose.range_bearing(&p);
            assert!(d <= 4.0 + 1e-9);
            assert!(th <= 0.5 + 1e-9, "theta {th}");
        }
    }

    #[test]
    fn init_spreads_particles_in_front_of_reader() {
        let mut rng = StdRng::seed_from_u64(2);
        let reader = reader_at(Pose::identity(), 20);
        let f = ObjectFilter::init_from_cone(&reader, 4.0, 0.6, 1000, 0, NO_PRIOR, &mut rng);
        assert_eq!(f.len(), 1000);
        // all particles forward of the reader
        for p in f.particles() {
            assert!(p.loc.x >= -1e-9, "behind the reader: {:?}", p.loc);
        }
    }

    #[test]
    fn repeated_reads_from_two_poses_triangulate() {
        // Fig. 2(b): an object read from two reader positions gets its
        // particles concentrated in the intersection of the two cones.
        let mut rng = StdRng::seed_from_u64(3);
        let m = model();
        let truth = Point3::new(2.0, 1.0, 0.0);
        let pose1 = Pose::new(Point3::new(0.0, 0.0, 0.0), 0.0);
        let pose2 = Pose::new(Point3::new(0.0, 2.0, 0.0), 0.0);

        let mut reader = reader_at(pose1, 50);
        let mut f = ObjectFilter::init_from_cone(&reader, 6.0, 1.0, 2000, 0, NO_PRIOR, &mut rng);
        f.weight(&m, &mut reader, true);
        let (e1, _) = f.estimate(&reader);
        let err1 = e1.dist_xy(&truth);

        // second reading from pose2
        let mut reader2 = reader_at(pose2, 50);
        f.refresh_pointers(&reader2, 1, &mut rng);
        f.weight(&m, &mut reader2, true);
        f.maybe_resample(&reader2, 0.9, &mut rng);
        let (e2, _) = f.estimate(&reader2);
        let err2 = e2.dist_xy(&truth);
        assert!(
            err2 < err1 + 0.15,
            "second reading should help or hold: {err1} -> {err2}"
        );
        // and the cloud tightened along y (the second pose disambiguates y)
        assert!(e2.dist_xy(&truth) < 1.5, "err after two reads {err2}");
    }

    #[test]
    fn misses_push_particles_away_from_reader() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = model();
        let mut reader = reader_at(Pose::identity(), 20);
        let mut f = ObjectFilter::init_from_cone(&reader, 6.0, 1.0, 2000, 0, NO_PRIOR, &mut rng);
        let (before, _) = f.estimate(&reader);
        for _ in 0..5 {
            f.weight(&m, &mut reader, false);
        }
        let (after, _) = f.estimate(&reader);
        assert!(
            after.dist(&Point3::origin()) > before.dist(&Point3::origin()),
            "misses should push the estimate outward: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn resample_concentrates_on_heavy_particles() {
        let mut rng = StdRng::seed_from_u64(5);
        let reader = reader_at(Pose::identity(), 10);
        let particles: Vec<ObjectParticle> = (0..100)
            .map(|i| ObjectParticle {
                loc: Point3::new(i as f64, 0.0, 0.0),
                reader_idx: 0,
                log_w: if i == 42 { 0.0 } else { -60.0 },
            })
            .collect();
        let mut f = ObjectFilter::from_particles(particles, 0);
        assert!(f.maybe_resample(&reader, 0.5, &mut rng));
        assert_eq!(f.resample_count(), 1);
        let at_42 = f
            .particles()
            .iter()
            .filter(|p| (p.loc.x - 42.0).abs() < 1e-9)
            .count();
        assert!(
            at_42 > 95,
            "resample should clone the heavy particle, got {at_42}"
        );
    }

    #[test]
    fn respawn_half_moves_low_weight_half() {
        let mut rng = StdRng::seed_from_u64(6);
        let reader = reader_at(Pose::new(Point3::new(100.0, 100.0, 0.0), 0.0), 10);
        let particles: Vec<ObjectParticle> = (0..100)
            .map(|i| ObjectParticle {
                loc: Point3::new(0.0, i as f64 * 0.01, 0.0),
                reader_idx: 0,
                log_w: if i < 50 { -0.1 } else { -30.0 },
            })
            .collect();
        let mut f = ObjectFilter::from_particles(particles, 0);
        f.respawn_half(&reader, 4.0, 0.6, NO_PRIOR, &mut rng);
        // half the particles moved near the (distant) reader
        let near_reader = f
            .particles()
            .iter()
            .filter(|p| p.loc.dist(&Point3::new(100.0, 100.0, 0.0)) < 6.0)
            .count();
        assert_eq!(near_reader, 50);
        // the surviving half is the previously-heavy half
        let near_origin = f
            .particles()
            .iter()
            .filter(|p| p.loc.x.abs() < 1.0 && p.loc.y < 0.6)
            .count();
        assert_eq!(near_origin, 50);
    }

    #[test]
    fn pointer_refresh_is_idempotent_per_stamp() {
        let mut rng = StdRng::seed_from_u64(7);
        let reader = reader_at(Pose::identity(), 10);
        let mut f = ObjectFilter::init_from_cone(&reader, 4.0, 0.5, 100, 0, NO_PRIOR, &mut rng);
        f.refresh_pointers(&reader, 5, &mut rng);
        let ptrs: Vec<u32> = f.particles().iter().map(|p| p.reader_idx).collect();
        f.refresh_pointers(&reader, 5, &mut rng); // same stamp: no-op
        let ptrs2: Vec<u32> = f.particles().iter().map(|p| p.reader_idx).collect();
        assert_eq!(ptrs, ptrs2);
    }

    #[test]
    fn predict_with_zero_alpha_is_noop() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut params = ModelParams::default_warehouse();
        params.object.alpha = 0.0;
        let m = JointModel::new(params);
        let reader = reader_at(Pose::identity(), 5);
        let mut f = ObjectFilter::init_from_cone(&reader, 4.0, 0.5, 50, 0, NO_PRIOR, &mut rng);
        let before: Vec<Point3> = f.particles().iter().map(|p| p.loc).collect();
        f.predict(&m, &prior(), true, &mut rng);
        let after: Vec<Point3> = f.particles().iter().map(|p| p.loc).collect();
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b, a);
        }
    }

    #[test]
    fn weight_deposits_support_on_reader() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = model();
        let mut reader = reader_at(Pose::identity(), 10);
        let mut f = ObjectFilter::init_from_cone(&reader, 4.0, 0.5, 100, 0, NO_PRIOR, &mut rng);
        f.weight(&m, &mut reader, true);
        let total: f64 = reader.support.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "support mass {total}");
    }

    #[test]
    fn remap_reassigns_dead_pointers() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = model();
        let mut reader = reader_at(Pose::identity(), 20);
        let mut f = ObjectFilter::init_from_cone(&reader, 4.0, 0.5, 200, 0, NO_PRIOR, &mut rng);
        // degenerate reader weights to force a resample
        reader.predict(&m, Some(Vec3::zero()), None, &mut rng);
        for p in reader.particles.iter_mut() {
            p.log_w = -60.0;
        }
        reader.particles[3].log_w = 0.0;
        let remap = reader.maybe_resample(0.5, &mut rng).expect("resample");
        f.apply_reader_remap(&remap, &mut rng);
        for p in f.particles() {
            assert!(p.reader_idx < remap.num_new());
        }
    }
}
