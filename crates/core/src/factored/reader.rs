//! The reader side of the factored filter.
//!
//! Reader particles are proposed from the motion model — conditioned on
//! the odometry increment between consecutive location reports when one
//! is available (the constant-velocity `Δ` is the fallback, matching
//! §III-A's "new location is the old location plus a noisy version of
//! the average velocity") — and weighted by the location report and the
//! shelf-tag readings (the `w_rt` factor of Eq. 5).
//!
//! Resampling is *instrumented to favor reader particles that are
//! associated with good object particles* (§IV-B): object filters
//! deposit per-reader support while weighting, and the resampling
//! distribution multiplies the reader weight by that support.

use crate::particle::{
    effective_sample_size_iter, log_normalize, log_normalize_by, systematic_resample,
    weighted_mean_pose, ReaderParticle,
};
use rand::Rng;
use rfid_geom::{Point3, Pose, Vec3};
use rfid_model::sensor::ReadRateModel;
use rfid_model::JointModel;

/// The result of a reader resampling step: for each *old* particle
/// index, the index of its first surviving copy (if any). Object
/// filters use this to keep their pointers meaningful within an epoch.
#[derive(Debug, Clone)]
pub struct ReaderRemap {
    first_descendant: Vec<Option<u32>>,
    num_new: u32,
}

impl ReaderRemap {
    /// Maps an old particle index to a surviving slot, or `None` when
    /// the particle left no descendants.
    pub fn map(&self, old: u32) -> Option<u32> {
        self.first_descendant.get(old as usize).copied().flatten()
    }

    /// Number of particles after resampling.
    pub fn num_new(&self) -> u32 {
        self.num_new
    }

    /// The raw first-descendant table (one entry per *old* particle).
    /// Exposed so a cluster head can ship the remap over the wire.
    pub fn first_descendant(&self) -> &[Option<u32>] {
        &self.first_descendant
    }

    /// Rebuilds a remap from its wire representation (the inverse of
    /// [`ReaderRemap::first_descendant`] + [`ReaderRemap::num_new`]).
    pub fn from_parts(first_descendant: Vec<Option<u32>>, num_new: u32) -> Self {
        Self {
            first_descendant,
            num_new,
        }
    }
}

/// The reader particle filter.
#[derive(Debug, Clone)]
pub struct ReaderFilter {
    pub(crate) particles: Vec<ReaderParticle>,
    /// Per-particle support accumulated from object filters since the
    /// last resample (in probability space, not log).
    pub(crate) support: Vec<f64>,
    /// Number of resampling events (diagnostics).
    resample_count: u64,
}

impl ReaderFilter {
    /// Initializes all particles at `start` (the paper assumes "the
    /// initial reader location R_1 is known" — in practice, the first
    /// location report).
    pub fn new(n: usize, start: Pose) -> Self {
        debug_assert!(n >= 1, "reader filters are never empty");
        let w = -(n as f64).ln();
        Self {
            particles: vec![
                ReaderParticle {
                    pose: start,
                    log_w: w,
                };
                n
            ],
            support: vec![0.0; n],
            resample_count: 0,
        }
    }

    /// Rebuilds a filter from checkpointed parts, preserving the
    /// accumulated support and resample counter exactly.
    pub fn from_parts(particles: Vec<ReaderParticle>, support: Vec<f64>, resamples: u64) -> Self {
        debug_assert!(!particles.is_empty(), "reader filters are never empty");
        debug_assert_eq!(particles.len(), support.len());
        Self {
            particles,
            support,
            resample_count: resamples,
        }
    }

    /// The particles (log weights normalized).
    pub fn particles(&self) -> &[ReaderParticle] {
        &self.particles
    }

    /// The per-particle object support accumulated since the last
    /// resample (checkpointing).
    pub fn support(&self) -> &[f64] {
        &self.support
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Whether the filter has no particles (never true in practice —
    /// construction `debug_assert!`s at least one).
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Number of resampling events so far.
    pub fn resample_count(&self) -> u64 {
        self.resample_count
    }

    /// Proposal step: moves every particle by the odometry increment
    /// (or the model's average velocity when no odometry is available)
    /// plus motion noise, and applies the heading change.
    pub fn predict<S: ReadRateModel, R: Rng + ?Sized>(
        &mut self,
        model: &JointModel<S>,
        odom_delta: Option<Vec3>,
        heading: Option<f64>,
        rng: &mut R,
    ) {
        let params = model.motion.params();
        let delta = odom_delta.unwrap_or(params.delta);
        for p in &mut self.particles {
            let noise = Vec3::new(
                params.sigma.x * rfid_geom::standard_normal(rng),
                params.sigma.y * rfid_geom::standard_normal(rng),
                params.sigma.z * rfid_geom::standard_normal(rng),
            );
            let phi = match heading {
                // Reported heading is adopted directly: robot odometry
                // tracks orientation well, and the sensor model's angle
                // term needs a usable heading (see DESIGN.md §5).
                Some(h) => {
                    if params.heading_std > 0.0 {
                        h + params.heading_std * rfid_geom::standard_normal(rng)
                    } else {
                        h
                    }
                }
                None => p.pose.phi,
            };
            p.pose = Pose::new(p.pose.pos + delta + noise, phi);
        }
    }

    /// Weighting step: multiplies in the location-report likelihood and
    /// the shelf-tag reading likelihoods, then renormalizes.
    pub fn weight<'a, S: ReadRateModel, I>(
        &mut self,
        model: &JointModel<S>,
        report: Option<&Pose>,
        shelf_obs: I,
    ) where
        I: IntoIterator<Item = (&'a Point3, bool)> + Clone,
    {
        for p in &mut self.particles {
            p.log_w += model.reader_log_weight(&p.pose, report, shelf_obs.clone());
        }
        self.normalize();
    }

    /// Records object-filter support for a reader particle: `w` is the
    /// summed normalized joint weight of the object particles pointing
    /// at `idx`. Consumed by the next resampling step.
    pub fn add_support(&mut self, idx: u32, w: f64) {
        self.support[idx as usize] += w;
    }

    /// Merges one object's staged support row (dense, `len()`-sized)
    /// into the accumulated support. The engine merges rows in active-
    /// set order on one thread, so the floating-point sum is identical
    /// for every `worker_threads` value.
    pub fn merge_support(&mut self, staged: &[f64]) {
        debug_assert_eq!(staged.len(), self.support.len());
        for (s, d) in self.support.iter_mut().zip(staged) {
            *s += *d;
        }
    }

    /// Effective sample size of the current weights, computed in one
    /// streaming pass (weights are kept normalized by
    /// [`weight`](Self::weight)).
    pub fn ess(&self) -> f64 {
        effective_sample_size_iter(self.particles.iter().map(|p| p.log_w))
    }

    /// Resamples when the ESS has dropped below `ess_frac * n`,
    /// blending the reader weights with accumulated object support.
    /// Returns the remap when resampling occurred.
    pub fn maybe_resample<R: Rng + ?Sized>(
        &mut self,
        ess_frac: f64,
        rng: &mut R,
    ) -> Option<ReaderRemap> {
        let n = self.particles.len();
        if self.ess() >= ess_frac * n as f64 {
            // decay support between resamples so stale evidence fades
            for s in &mut self.support {
                *s *= 0.5;
            }
            return None;
        }
        // resampling distribution: w_r * (epsilon + support)
        let total_support: f64 = self.support.iter().sum();
        let mut dist: Vec<f64> = if total_support > 0.0 {
            self.particles
                .iter()
                .zip(&self.support)
                .map(|(p, s)| p.log_w + (1e-3 + s).ln())
                .collect()
        } else {
            self.particles.iter().map(|p| p.log_w).collect()
        };
        log_normalize(&mut dist);
        let ancestry = systematic_resample(&dist, n, rng);

        let mut first_descendant = vec![None; n];
        let mut new_particles = Vec::with_capacity(n);
        let uniform = -(n as f64).ln();
        for (slot, &old) in ancestry.iter().enumerate() {
            if first_descendant[old as usize].is_none() {
                first_descendant[old as usize] = Some(slot as u32);
            }
            new_particles.push(ReaderParticle {
                pose: self.particles[old as usize].pose,
                log_w: uniform,
            });
        }
        self.particles = new_particles;
        self.support = vec![0.0; n];
        self.resample_count += 1;
        Some(ReaderRemap {
            first_descendant,
            num_new: n as u32,
        })
    }

    /// Posterior-mean pose estimate.
    pub fn estimate(&self) -> Pose {
        weighted_mean_pose(&self.particles).expect("reader filter is never empty")
    }

    /// Draws a particle index according to the current weights.
    ///
    /// One O(n) scan with an `exp` per step — fine for occasional
    /// draws. Loops that draw per object particle (pointer refreshes,
    /// cone initialization) build the CDF once with
    /// [`sampling_cdf_into`](Self::sampling_cdf_into) and draw through
    /// [`sample_index_with`](Self::sample_index_with) instead; both
    /// paths select identical indices from identical RNG draws.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        let mut cum = 0.0;
        for (i, p) in self.particles.iter().enumerate() {
            cum += p.log_w.exp();
            if u <= cum {
                return i as u32;
            }
        }
        (self.particles.len() - 1) as u32
    }

    /// Fills `out` with the cumulative particle weights (probability
    /// space), for repeated O(log n) draws via
    /// [`sample_index_with`](Self::sample_index_with). The running sum
    /// accumulates in the same order as [`sample_index`](Self::sample_index)'s
    /// scan, so the two paths pick bit-identical indices for the same
    /// RNG draw. Valid until the weights change.
    pub fn sampling_cdf_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.particles.len());
        let mut cum = 0.0;
        for p in &self.particles {
            cum += p.log_w.exp();
            out.push(cum);
        }
    }

    /// Writes each particle heading's `[cos φ, sin φ]` into `out`
    /// (cleared and reused). Like the sampling CDF, the table is built
    /// once per epoch — the poses are frozen while objects step — and
    /// shared by every object weight pass, hoisting the per-particle
    /// `sin`/`cos` out of the likelihood loops. Valid until the poses
    /// change.
    pub fn trig_into(&self, out: &mut Vec<[f64; 2]>) {
        out.clear();
        out.reserve(self.particles.len());
        out.extend(
            self.particles
                .iter()
                .map(|p| [p.pose.phi.cos(), p.pose.phi.sin()]),
        );
    }

    /// Draws a particle index by binary search over a CDF built by
    /// [`sampling_cdf_into`](Self::sampling_cdf_into).
    pub fn sample_index_with<R: Rng + ?Sized>(&self, cdf: &[f64], rng: &mut R) -> u32 {
        debug_assert_eq!(cdf.len(), self.particles.len());
        let u: f64 = rng.gen();
        // first index with cdf[i] >= u — exactly sample_index's
        // `u <= cum` stopping rule (clamped like its fallback when
        // floating-point shortfall leaves the total below u)
        let i = cdf.partition_point(|c| *c < u);
        i.min(self.particles.len() - 1) as u32
    }

    /// The normalized weight of particle `idx` (probability space).
    pub fn weight_of(&self, idx: u32) -> f64 {
        self.particles[idx as usize].log_w.exp()
    }

    /// The log weight of particle `idx`.
    pub fn log_weight_of(&self, idx: u32) -> f64 {
        self.particles[idx as usize].log_w
    }

    /// The pose of particle `idx`.
    pub fn pose_of(&self, idx: u32) -> &Pose {
        &self.particles[idx as usize].pose
    }

    /// In-place log-normalization (the shared [`log_normalize_by`],
    /// projected onto `log_w`).
    fn normalize(&mut self) {
        log_normalize_by(&mut self.particles, |p| p.log_w, |p, w| p.log_w = w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_model::ModelParams;

    fn model() -> JointModel {
        JointModel::new(ModelParams::default_warehouse())
    }

    #[test]
    fn predict_moves_particles_by_odometry() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = model();
        let mut f = ReaderFilter::new(200, Pose::identity());
        f.predict(&m, Some(Vec3::new(0.0, 0.5, 0.0)), None, &mut rng);
        let est = f.estimate();
        assert!((est.pos.y - 0.5).abs() < 0.01, "est y {}", est.pos.y);
    }

    #[test]
    fn predict_falls_back_to_model_delta() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = model(); // delta = (0, 0.1, 0)
        let mut f = ReaderFilter::new(200, Pose::identity());
        f.predict(&m, None, None, &mut rng);
        let est = f.estimate();
        assert!((est.pos.y - 0.1).abs() < 0.01);
    }

    #[test]
    fn weighting_pulls_estimate_toward_report() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = model();
        let mut f = ReaderFilter::new(500, Pose::identity());
        // spread the particles with a few noisy predicts
        for _ in 0..5 {
            f.predict(&m, Some(Vec3::zero()), None, &mut rng);
        }
        let report = Pose::new(Point3::new(0.02, 0.02, 0.0), 0.0);
        f.weight(&m, Some(&report), std::iter::empty());
        let est = f.estimate();
        assert!(est.pos.dist(&report.pos) < 0.02);
    }

    #[test]
    fn shelf_tag_corrects_biased_reports() {
        // Systematic report bias + an observed shelf tag: the particles
        // near the shelf tag must win over the ones at the biased report.
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = ModelParams::default_warehouse();
        params.sensing.sigma = Vec3::new(0.3, 0.3, 0.0); // weak trust in reports
        let m = JointModel::new(params);
        let mut f = ReaderFilter::new(2000, Pose::identity());
        for _ in 0..20 {
            f.predict(&m, Some(Vec3::zero()), None, &mut rng);
        }
        // true pose ~ origin; report is biased 1 ft along y
        let report = Pose::new(Point3::new(0.0, 1.0, 0.0), 0.0);
        let shelf = Point3::new(2.0, 0.0, 0.0); // readable only from near origin
        f.weight(&m, Some(&report), [(&shelf, true)]);
        let est = f.estimate();
        assert!(
            est.pos.y < 0.9,
            "estimate should be pulled back toward the shelf tag; y = {}",
            est.pos.y
        );
    }

    #[test]
    fn resample_triggers_on_degenerate_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = model();
        let mut f = ReaderFilter::new(100, Pose::identity());
        for _ in 0..10 {
            f.predict(&m, Some(Vec3::zero()), None, &mut rng);
        }
        // an extremely precise report degenerates the weights
        let mut params = ModelParams::default_warehouse();
        params.sensing.sigma = Vec3::new(0.0001, 0.0001, 0.0);
        let sharp = JointModel::new(params);
        let report = Pose::new(Point3::new(0.001, 0.001, 0.0), 0.0);
        f.weight(&sharp, Some(&report), std::iter::empty());
        let remap = f.maybe_resample(0.5, &mut rng);
        assert!(remap.is_some());
        assert_eq!(f.resample_count(), 1);
        // weights are uniform afterwards
        let ess = f.ess();
        assert!((ess - 100.0).abs() < 1e-6, "post-resample ESS {ess}");
    }

    #[test]
    fn remap_points_to_descendants() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = model();
        let mut f = ReaderFilter::new(50, Pose::identity());
        f.predict(&m, Some(Vec3::zero()), None, &mut rng);
        // make one particle dominant
        let mut params = ModelParams::default_warehouse();
        params.sensing.sigma = Vec3::new(0.001, 0.001, 0.0);
        let sharp = JointModel::new(params);
        let winner_pose = *f.pose_of(7);
        f.weight(&sharp, Some(&winner_pose), std::iter::empty());
        if let Some(remap) = f.maybe_resample(0.9, &mut rng) {
            // surviving index maps to a slot holding the same pose
            if let Some(new_idx) = remap.map(7) {
                assert!(f.pose_of(new_idx).pos.dist(&winner_pose.pos) < 1e-9);
            }
            assert_eq!(remap.num_new(), 50);
        } else {
            panic!("expected resample");
        }
    }

    #[test]
    fn support_biases_resampling() {
        // two groups of particles with equal observation weights; object
        // support only on group A => group A dominates after resampling.
        let mut f = ReaderFilter::new(100, Pose::identity());
        // manually move half the particles elsewhere
        for i in 50..100 {
            f.particles[i].pose = Pose::new(Point3::new(10.0, 0.0, 0.0), 0.0);
        }
        for i in 0..50 {
            f.add_support(i as u32, 1.0);
        }
        // force resample by setting unequal-but-finite weights with low ESS:
        // concentrate weight on two particles, one in each group
        for p in f.particles.iter_mut() {
            p.log_w = f64::NEG_INFINITY;
        }
        f.particles[0].log_w = (0.5f64).ln();
        f.particles[99].log_w = (0.5f64).ln();
        let mut rng = StdRng::seed_from_u64(7);
        let remap = f.maybe_resample(0.5, &mut rng);
        assert!(remap.is_some());
        let near_origin = f
            .particles()
            .iter()
            .filter(|p| p.pose.pos.x.abs() < 1.0)
            .count();
        assert!(
            near_origin > 90,
            "supported group should dominate, got {near_origin}/100"
        );
    }

    #[test]
    fn sample_index_follows_weights() {
        let mut f = ReaderFilter::new(10, Pose::identity());
        for p in f.particles.iter_mut() {
            p.log_w = f64::NEG_INFINITY;
        }
        f.particles[4].log_w = 0.0;
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            assert_eq!(f.sample_index(&mut rng), 4);
        }
    }
}
