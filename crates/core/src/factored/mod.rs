//! Particle factorization (§IV-B).
//!
//! Instead of joint particles over the reader and *all* objects, the
//! factored filter keeps:
//!
//! * a list of **reader particles** (hypotheses about the reader pose)
//!   with factored weights `w_rt` ([`reader::ReaderFilter`]), and
//! * per-object lists of **object particles**, each holding a location
//!   hypothesis, a *pointer* to the reader particle it is conditioned
//!   on, and a factored weight `w_ti` ([`object::ObjectFilter`]).
//!
//! The weight of the implicit unfactored particle is the product of the
//! reader weight and the object weights (Eq. 5); the code only ever
//! manipulates the factors. Good reader hypotheses can thus combine
//! with good object hypotheses from *different* implicit joint
//! particles — the effect Fig. 3(a) motivates — so the particle count
//! needed is linear, not exponential, in the number of objects.

pub mod object;
pub mod reader;

pub use object::{ObjectFilter, StepOutcome};
pub use reader::{ReaderFilter, ReaderRemap};
