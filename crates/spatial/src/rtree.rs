//! A simplified R\*-tree over axis-aligned bounding boxes.
//!
//! Design follows Beckmann et al. (SIGMOD '90) with the simplifications
//! the paper allows itself ("a simplified R\*-tree"):
//!
//! * `ChooseSubtree` descends by least volume enlargement, breaking ties
//!   by least volume (the classic R-tree criterion; the leaf-level overlap
//!   criterion of the full R\*-tree is skipped).
//! * Node splits use the R\*-tree margin heuristic: choose the split axis
//!   minimizing the summed margins over candidate distributions, then the
//!   distribution minimizing overlap (ties: minimal total volume).
//! * Forced reinsertion is omitted.
//!
//! The tree stores arbitrary payloads `T` at the leaves and supports
//! intersection queries, which is all the sensing-region index needs.

use rfid_geom::Aabb;

/// Maximum number of entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum number of entries per node produced by a split.
const MIN_ENTRIES: usize = 3;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { entries: Vec<(Aabb, T)> },
    Inner { children: Vec<(Aabb, Box<Node<T>>)> },
}

impl<T> Node<T> {
    fn mbr(&self) -> Aabb {
        let mut b = Aabb::empty();
        match self {
            Node::Leaf { entries } => {
                for (a, _) in entries {
                    b = b.union(a);
                }
            }
            Node::Inner { children } => {
                for (a, _) in children {
                    b = b.union(a);
                }
            }
        }
        b
    }

    /// Entry count (used by the invariant checks in tests).
    #[cfg_attr(not(test), allow(dead_code))]
    fn len(&self) -> usize {
        match self {
            Node::Leaf { entries } => entries.len(),
            Node::Inner { children } => children.len(),
        }
    }
}

/// An R\*-tree mapping bounding boxes to payloads.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
    height: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
            height: 1,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf root). Exposed for tests
    /// and diagnostics.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.root = Node::Leaf {
            entries: Vec::new(),
        };
        self.len = 0;
        self.height = 1;
    }

    /// Inserts a box/payload pair.
    pub fn insert(&mut self, aabb: Aabb, value: T) {
        debug_assert!(!aabb.is_empty(), "cannot index an empty AABB");
        self.len += 1;
        if let Some((left, right)) = insert_rec(&mut self.root, aabb, value) {
            // Root split: grow the tree by one level.
            let old_height = self.height;
            let left_mbr = left.mbr();
            let right_mbr = right.mbr();
            self.root = Node::Inner {
                children: vec![(left_mbr, Box::new(left)), (right_mbr, Box::new(right))],
            };
            self.height = old_height + 1;
        }
    }

    /// Calls `f` for every entry whose box intersects `query`.
    pub fn for_each_intersecting<'a, F>(&'a self, query: &Aabb, f: &mut F)
    where
        F: FnMut(&'a Aabb, &'a T),
    {
        search_rec(&self.root, query, f);
    }

    /// Collects references to every payload whose box intersects `query`.
    pub fn query<'a>(&'a self, query: &Aabb) -> Vec<&'a T> {
        let mut out = Vec::new();
        self.for_each_intersecting(query, &mut |_, v| out.push(v));
        out
    }

    /// Visits every entry in the tree (tests, stats).
    pub fn for_each<'a, F>(&'a self, f: &mut F)
    where
        F: FnMut(&'a Aabb, &'a T),
    {
        walk_rec(&self.root, f);
    }

    /// The minimum bounding rectangle of the whole tree
    /// ([`Aabb::empty`] when empty).
    pub fn bounds(&self) -> Aabb {
        self.root.mbr()
    }
}

fn walk_rec<'a, T, F>(node: &'a Node<T>, f: &mut F)
where
    F: FnMut(&'a Aabb, &'a T),
{
    match node {
        Node::Leaf { entries } => {
            for (a, v) in entries {
                f(a, v);
            }
        }
        Node::Inner { children } => {
            for (_, c) in children {
                walk_rec(c, f);
            }
        }
    }
}

fn search_rec<'a, T, F>(node: &'a Node<T>, query: &Aabb, f: &mut F)
where
    F: FnMut(&'a Aabb, &'a T),
{
    match node {
        Node::Leaf { entries } => {
            for (a, v) in entries {
                if a.intersects(query) {
                    f(a, v);
                }
            }
        }
        Node::Inner { children } => {
            for (a, c) in children {
                if a.intersects(query) {
                    search_rec(c, query, f);
                }
            }
        }
    }
}

/// Recursive insert; returns `Some((left, right))` when `node` split and
/// the caller must replace it by the two halves.
fn insert_rec<T>(node: &mut Node<T>, aabb: Aabb, value: T) -> Option<(Node<T>, Node<T>)> {
    match node {
        Node::Leaf { entries } => {
            entries.push((aabb, value));
            if entries.len() > MAX_ENTRIES {
                let (l, r) = split_entries(std::mem::take(entries));
                Some((Node::Leaf { entries: l }, Node::Leaf { entries: r }))
            } else {
                None
            }
        }
        Node::Inner { children } => {
            let idx = choose_subtree(children, &aabb);
            let split = insert_rec(&mut children[idx].1, aabb, value);
            // Refresh the MBR of the descended child.
            children[idx].0 = children[idx].1.mbr();
            if let Some((l, r)) = split {
                // Replace the split child by its two halves.
                children.swap_remove(idx);
                let lb = l.mbr();
                let rb = r.mbr();
                children.push((lb, Box::new(l)));
                children.push((rb, Box::new(r)));
                if children.len() > MAX_ENTRIES {
                    let (cl, cr) = split_entries(std::mem::take(children));
                    return Some((Node::Inner { children: cl }, Node::Inner { children: cr }));
                }
            }
            None
        }
    }
}

/// Least-enlargement subtree choice with least-volume tie-break.
fn choose_subtree<T>(children: &[(Aabb, Box<Node<T>>)], aabb: &Aabb) -> usize {
    let mut best = 0;
    let mut best_enl = f64::INFINITY;
    let mut best_vol = f64::INFINITY;
    for (i, (b, _)) in children.iter().enumerate() {
        let enl = b.enlargement(aabb);
        let vol = b.volume();
        if enl < best_enl - 1e-15 || ((enl - best_enl).abs() <= 1e-15 && vol < best_vol) {
            best = i;
            best_enl = enl;
            best_vol = vol;
        }
    }
    best
}

trait HasBox {
    fn bbox(&self) -> &Aabb;
}

impl<T> HasBox for (Aabb, T) {
    fn bbox(&self) -> &Aabb {
        &self.0
    }
}

/// R\*-style split: pick the axis with minimal summed margin over all
/// candidate distributions, then the distribution with minimal overlap
/// (ties: minimal summed volume).
fn split_entries<E: HasBox>(mut entries: Vec<E>) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() > MAX_ENTRIES);
    let n = entries.len();
    let dist_count = n - 2 * MIN_ENTRIES + 1;

    // For each axis, sort by box min and evaluate candidate splits.
    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    for axis in 0..3usize {
        sort_by_axis(&mut entries, axis);
        let mut margin_sum = 0.0;
        for k in 0..dist_count {
            let split_at = MIN_ENTRIES + k;
            let (lb, rb) = group_boxes(&entries, split_at);
            margin_sum += lb.margin() + rb.margin();
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
        }
    }

    sort_by_axis(&mut entries, best_axis);
    let mut best_split = MIN_ENTRIES;
    let mut best_overlap = f64::INFINITY;
    let mut best_vol = f64::INFINITY;
    for k in 0..dist_count {
        let split_at = MIN_ENTRIES + k;
        let (lb, rb) = group_boxes(&entries, split_at);
        let overlap = lb.intersection_volume(&rb);
        let vol = lb.volume() + rb.volume();
        if overlap < best_overlap - 1e-15
            || ((overlap - best_overlap).abs() <= 1e-15 && vol < best_vol)
        {
            best_overlap = overlap;
            best_vol = vol;
            best_split = split_at;
        }
    }

    let right = entries.split_off(best_split);
    (entries, right)
}

fn sort_by_axis<E: HasBox>(entries: &mut [E], axis: usize) {
    entries.sort_by(|a, b| {
        let (ka, kb) = match axis {
            0 => (a.bbox().min.x, b.bbox().min.x),
            1 => (a.bbox().min.y, b.bbox().min.y),
            _ => (a.bbox().min.z, b.bbox().min.z),
        };
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
}

fn group_boxes<E: HasBox>(entries: &[E], split_at: usize) -> (Aabb, Aabb) {
    let mut lb = Aabb::empty();
    for e in &entries[..split_at] {
        lb = lb.union(e.bbox());
    }
    let mut rb = Aabb::empty();
    for e in &entries[split_at..] {
        rb = rb.union(e.bbox());
    }
    (lb, rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rfid_geom::Point3;

    fn cube(x: f64, y: f64, r: f64) -> Aabb {
        Aabb::cube(Point3::new(x, y, 0.0), r)
    }

    #[test]
    fn empty_tree_queries_nothing() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert!(t.query(&cube(0.0, 0.0, 100.0)).is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn single_insert_found() {
        let mut t = RTree::new();
        t.insert(cube(1.0, 1.0, 0.5), 7u32);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query(&cube(1.2, 1.2, 0.5)), vec![&7]);
        assert!(t.query(&cube(10.0, 10.0, 0.5)).is_empty());
    }

    #[test]
    fn split_preserves_all_entries() {
        let mut t = RTree::new();
        for i in 0..50u32 {
            t.insert(cube(i as f64, 0.0, 0.4), i);
        }
        assert_eq!(t.len(), 50);
        assert!(t.height() > 1, "tree should have split");
        // every entry individually findable
        for i in 0..50u32 {
            let hits = t.query(&cube(i as f64, 0.0, 0.01));
            assert!(hits.contains(&&i), "entry {i} lost after splits");
        }
        // global query returns everything exactly once
        let mut all: Vec<u32> = t
            .query(&cube(25.0, 0.0, 100.0))
            .into_iter()
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn query_respects_boundaries() {
        let mut t = RTree::new();
        t.insert(
            Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)),
            1u8,
        );
        // touching box counts as intersecting (closed intervals)
        let touching = Aabb::new(Point3::new(1.0, 0.0, 0.0), Point3::new(2.0, 1.0, 1.0));
        assert_eq!(t.query(&touching).len(), 1);
        let beyond = Aabb::new(Point3::new(1.01, 0.0, 0.0), Point3::new(2.0, 1.0, 1.0));
        assert!(t.query(&beyond).is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut t = RTree::new();
        for i in 0..20 {
            t.insert(cube(i as f64, 0.0, 0.4), i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.query(&cube(0.0, 0.0, 100.0)).is_empty());
    }

    #[test]
    fn bounds_cover_all_inserted() {
        let mut t = RTree::new();
        t.insert(cube(-5.0, 2.0, 1.0), 0);
        t.insert(cube(9.0, -3.0, 1.0), 1);
        let b = t.bounds();
        assert!(b.contains(&Point3::new(-5.0, 2.0, 0.0)));
        assert!(b.contains(&Point3::new(9.0, -3.0, 0.0)));
    }

    #[test]
    fn node_invariants_after_many_inserts() {
        // All nodes (except possibly the root) must respect entry-count
        // bounds; inner MBRs must contain their children's boxes.
        let mut t = RTree::new();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..500u32 {
            let x = rng.gen_range(-100.0..100.0);
            let y = rng.gen_range(-100.0..100.0);
            t.insert(cube(x, y, rng.gen_range(0.1..2.0)), i);
        }
        check_invariants(&t.root, true);
        assert_eq!(t.len(), 500);
    }

    fn check_invariants<T>(node: &Node<T>, is_root: bool) {
        if !is_root {
            assert!(node.len() >= MIN_ENTRIES, "underfull node: {}", node.len());
        }
        assert!(node.len() <= MAX_ENTRIES, "overfull node: {}", node.len());
        if let Node::Inner { children } = node {
            for (b, c) in children {
                let child_mbr = c.mbr();
                assert!(
                    b.contains_box(&child_mbr) || child_mbr.is_empty(),
                    "stale MBR"
                );
                check_invariants(c, false);
            }
        }
    }

    /// Brute-force oracle for query correctness.
    fn brute(items: &[(Aabb, u32)], q: &Aabb) -> Vec<u32> {
        let mut v: Vec<u32> = items
            .iter()
            .filter(|(a, _)| a.intersects(q))
            .map(|(_, i)| *i)
            .collect();
        v.sort_unstable();
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_bruteforce(seed in 0u64..1000, n in 1usize..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = RTree::new();
            let mut items = Vec::new();
            for i in 0..n as u32 {
                let b = cube(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0),
                             rng.gen_range(0.1..3.0));
                t.insert(b, i);
                items.push((b, i));
            }
            for _ in 0..10 {
                let q = cube(rng.gen_range(-60.0..60.0), rng.gen_range(-60.0..60.0),
                             rng.gen_range(0.1..10.0));
                let mut got: Vec<u32> = t.query(&q).into_iter().copied().collect();
                got.sort_unstable();
                prop_assert_eq!(got, brute(&items, &q));
            }
        }

        #[test]
        fn prop_len_matches_walk(seed in 0u64..1000, n in 0usize..300) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = RTree::new();
            for i in 0..n as u32 {
                t.insert(cube(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0), 0.5), i);
            }
            let mut count = 0usize;
            t.for_each(&mut |_, _| count += 1);
            prop_assert_eq!(count, n);
            prop_assert_eq!(t.len(), n);
        }
    }
}
