//! The sensing-region-to-objects index of Fig. 4 in the paper.
//!
//! Two components:
//!
//! 1. a map from each inserted sensing-region bounding box to the set of
//!    objects that had *at least one particle* inside that box when the
//!    region was recorded (Fig. 4(b)), and
//! 2. a spatial index (the simplified R\*-tree) over those boxes
//!    (Fig. 4(c)).
//!
//! Probing with the bounding box of the *current* sensing region returns
//! every object that was ever plausibly located where the reader is now
//! looking — exactly the Case 2 set ("not read at t but read before near
//! the current location"). The inference engine unions this with the set
//! of currently-read objects (Case 1) and processes only that union.

use crate::rtree::RTree;
use rfid_geom::Aabb;
use std::collections::BTreeSet;
use std::hash::Hash;

/// Identifier for a recorded sensing region.
pub type RegionId = u64;

/// Index from past sensing regions to the objects seen (or believed)
/// there. `K` is the object-id type (kept generic so this substrate does
/// not depend on the stream crate's tag-id type).
#[derive(Debug, Clone, Default)]
pub struct RegionIndex<K: Copy + Ord + Hash> {
    tree: RTree<RegionId>,
    /// Object sets, indexed by `RegionId`. A `Vec` because region ids
    /// are dense (assigned sequentially at insertion).
    members: Vec<Vec<K>>,
    /// Boxes by region id, retained so regions can be merged/inspected.
    boxes: Vec<Aabb>,
}

impl<K: Copy + Ord + Hash> RegionIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self {
            tree: RTree::new(),
            members: Vec::new(),
            boxes: Vec::new(),
        }
    }

    /// Number of recorded regions.
    pub fn num_regions(&self) -> usize {
        self.boxes.len()
    }

    /// True when no region has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Records a sensing region with the objects having a particle
    /// inside it. Duplicate object ids are deduplicated. Returns the id
    /// assigned to the region.
    pub fn insert_region<I>(&mut self, bbox: Aabb, objects: I) -> RegionId
    where
        I: IntoIterator<Item = K>,
    {
        let id = self.boxes.len() as RegionId;
        let mut set: Vec<K> = objects.into_iter().collect();
        set.sort_unstable();
        set.dedup();
        self.members.push(set);
        self.boxes.push(bbox);
        self.tree.insert(bbox, id);
        id
    }

    /// Adds an object to an already-recorded region (used when a
    /// particle respawn lands inside an old region).
    pub fn add_member(&mut self, region: RegionId, object: K) {
        let set = &mut self.members[region as usize];
        if let Err(pos) = set.binary_search(&object) {
            set.insert(pos, object);
        }
    }

    /// All objects recorded in any region whose box intersects `query` —
    /// the Case 2 candidate set for the current sensing region.
    pub fn query_objects(&self, query: &Aabb) -> BTreeSet<K> {
        let mut out = BTreeSet::new();
        self.tree.for_each_intersecting(query, &mut |_, id| {
            for k in &self.members[*id as usize] {
                out.insert(*k);
            }
        });
        out
    }

    /// [`query_objects`](Self::query_objects) into a caller-owned
    /// buffer: appends the members of every intersecting region to
    /// `out` *without* deduplicating across regions. Hot-path variant —
    /// callers that probe every epoch sort/dedup a reused `Vec` once
    /// instead of building a fresh `BTreeSet` per probe.
    pub fn query_objects_into(&self, query: &Aabb, out: &mut Vec<K>) {
        self.tree.for_each_intersecting(query, &mut |_, id| {
            out.extend_from_slice(&self.members[*id as usize]);
        });
    }

    /// Ids of regions intersecting `query` (diagnostics / tests).
    pub fn query_regions(&self, query: &Aabb) -> Vec<RegionId> {
        let mut ids: Vec<RegionId> = self.tree.query(query).into_iter().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The bounding box of a recorded region.
    pub fn region_box(&self, region: RegionId) -> Aabb {
        self.boxes[region as usize]
    }

    /// The member set of a recorded region.
    pub fn region_members(&self, region: RegionId) -> &[K] {
        &self.members[region as usize]
    }

    /// Drops all recorded regions (e.g., between warehouse scan rounds if
    /// the application wants a bounded history).
    pub fn clear(&mut self) {
        self.tree.clear();
        self.members.clear();
        self.boxes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Point3;

    fn cube(x: f64, y: f64, r: f64) -> Aabb {
        Aabb::cube(Point3::new(x, y, 0.0), r)
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx: RegionIndex<u32> = RegionIndex::new();
        assert!(idx.is_empty());
        assert!(idx.query_objects(&cube(0.0, 0.0, 10.0)).is_empty());
    }

    #[test]
    fn members_deduplicated_and_sorted() {
        let mut idx = RegionIndex::new();
        let id = idx.insert_region(cube(0.0, 0.0, 1.0), vec![3u32, 1, 3, 2, 1]);
        assert_eq!(idx.region_members(id), &[1, 2, 3]);
    }

    #[test]
    fn query_unions_overlapping_regions() {
        let mut idx = RegionIndex::new();
        idx.insert_region(cube(0.0, 0.0, 1.0), vec![1u32, 2]);
        idx.insert_region(cube(1.5, 0.0, 1.0), vec![2u32, 3]);
        idx.insert_region(cube(100.0, 0.0, 1.0), vec![9u32]);
        let got = idx.query_objects(&cube(0.75, 0.0, 0.5));
        assert_eq!(got.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn far_query_excludes_case4_objects() {
        // The whole point of the index: objects recorded far from the
        // current reader location are not returned.
        let mut idx = RegionIndex::new();
        for i in 0..100u32 {
            idx.insert_region(cube(i as f64 * 10.0, 0.0, 1.0), vec![i]);
        }
        let got = idx.query_objects(&cube(500.0, 0.0, 1.5));
        assert_eq!(got.into_iter().collect::<Vec<_>>(), vec![50]);
    }

    #[test]
    fn add_member_keeps_sorted_unique() {
        let mut idx = RegionIndex::new();
        let id = idx.insert_region(cube(0.0, 0.0, 1.0), vec![5u32]);
        idx.add_member(id, 3);
        idx.add_member(id, 5); // duplicate ignored
        idx.add_member(id, 7);
        assert_eq!(idx.region_members(id), &[3, 5, 7]);
        let got = idx.query_objects(&cube(0.0, 0.0, 0.1));
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn query_regions_reports_ids_in_order() {
        let mut idx: RegionIndex<u32> = RegionIndex::new();
        let a = idx.insert_region(cube(0.0, 0.0, 1.0), vec![]);
        let _b = idx.insert_region(cube(50.0, 0.0, 1.0), vec![]);
        let c = idx.insert_region(cube(0.5, 0.5, 1.0), vec![]);
        assert_eq!(idx.query_regions(&cube(0.0, 0.0, 2.0)), vec![a, c]);
    }

    #[test]
    fn clear_empties_everything() {
        let mut idx = RegionIndex::new();
        idx.insert_region(cube(0.0, 0.0, 1.0), vec![1u32]);
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.num_regions(), 0);
        assert!(idx.query_objects(&cube(0.0, 0.0, 10.0)).is_empty());
    }

    #[test]
    fn many_regions_scale() {
        let mut idx = RegionIndex::new();
        for i in 0..2000u32 {
            let x = (i % 200) as f64;
            let y = (i / 200) as f64 * 5.0;
            idx.insert_region(cube(x, y, 0.6), vec![i, i + 1]);
        }
        assert_eq!(idx.num_regions(), 2000);
        // a local query touches only a handful of regions
        let got = idx.query_objects(&cube(100.0, 0.0, 0.5));
        assert!(got.len() <= 10, "local query got {} objects", got.len());
        assert!(got.contains(&100));
    }
}
