//! Spatial indexing substrate for scalable RFID inference.
//!
//! §IV-C of the paper restricts particle-filter work at each epoch to the
//! objects that are either (Case 1) read right now or (Case 2) were read
//! before *near the current reader location*. Distinguishing Case 2 from
//! Case 4 ("far away and silent") requires remembering where sensing
//! happened and which objects had particles there:
//!
//! * [`rtree::RTree`] — a simplified R\*-tree over axis-aligned bounding
//!   boxes (the paper cites Beckmann et al.'s R\*-tree and says it uses a
//!   simplified variant). Supports insertion with least-enlargement
//!   subtree choice and an R\*-style margin-driven split, plus
//!   intersection queries.
//! * [`region_index::RegionIndex`] — the two-level structure of Fig. 4:
//!   each inserted sensing-region bounding box carries the set of object
//!   ids that had at least one particle inside it; probing with the
//!   current sensing region returns the union of object sets over all
//!   overlapping past regions.

pub mod region_index;
pub mod rtree;

pub use region_index::RegionIndex;
pub use rtree::RTree;
