//! One-command local cluster launch: spawns the router, `N` workers,
//! and the coordinator as real child processes on loopback sockets,
//! waits for the run, and returns the coordinator's merged digest.
//! Used by the integration tests, the throughput benchmark, and the
//! `cluster-smoke` CI job.

use std::io::{self, BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// What a completed cluster run produced, as reported on the
/// coordinator's stdout.
#[derive(Debug, Clone, Copy)]
pub struct ClusterOutcome {
    pub events: usize,
    /// FNV-1a digest of the merged event stream.
    pub digest: u64,
}

/// Locates one of this crate's binaries. Prefers the
/// `CARGO_BIN_EXE_<name>` variable cargo sets for this crate's own
/// integration tests; otherwise walks up from the current executable
/// (`target/<profile>/deps/test-xyz` or `target/<profile>/bench-xyz`)
/// to the profile directory, where sibling binaries land.
pub fn bin_path(name: &str) -> io::Result<PathBuf> {
    if let Ok(p) = std::env::var(format!("CARGO_BIN_EXE_{name}")) {
        return Ok(PathBuf::from(p));
    }
    let exe = std::env::current_exe()?;
    let mut dir = exe
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "executable has no parent"))?;
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir = dir
            .parent()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "deps has no parent"))?;
    }
    let candidate = dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} not found — build the rfid-cluster binaries first (cargo build -p rfid-cluster)",
                candidate.display()
            ),
        ))
    }
}

/// A local cluster launch plan.
#[derive(Debug, Clone)]
pub struct LocalCluster {
    pub scenario: String,
    pub num_workers: usize,
    /// Where the coordinator writes the merged event stream
    /// (bit-exact; decode with `coordinator::read_events_file`).
    pub events_out: Option<PathBuf>,
    /// Where the router writes the merged cluster-wide registry
    /// snapshot (text exposition, same format TELEMETRY serves).
    pub metrics_out: Option<PathBuf>,
}

struct ChildGuard(Option<Child>, &'static str);

impl ChildGuard {
    fn child(&mut self) -> &mut Child {
        self.0.as_mut().expect("not yet waited")
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        // only reaps stragglers after an error return; the success
        // path takes the child out via `wait_success`
        if let Some(c) = &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn spawn(bin: &Path, args: &[String]) -> io::Result<Child> {
    Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
}

/// Reads lines from a child's stdout until `LISTENING <addr>`.
fn wait_listening(child: &mut Child, who: &str) -> io::Result<String> {
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line?;
        if let Some(addr) = line.strip_prefix("LISTENING ") {
            return Ok(addr.trim().to_string());
        }
    }
    Err(io::Error::new(
        io::ErrorKind::UnexpectedEof,
        format!("{who} exited before announcing its address"),
    ))
}

fn wait_success(mut guard: ChildGuard) -> io::Result<Child> {
    let mut child = guard.0.take().expect("not yet waited");
    let status = child.wait()?;
    if !status.success() {
        return Err(io::Error::other(format!("{} failed: {status}", guard.1)));
    }
    Ok(child)
}

impl LocalCluster {
    pub fn new(scenario: &str, num_workers: usize) -> Self {
        Self {
            scenario: scenario.to_string(),
            num_workers,
            events_out: None,
            metrics_out: None,
        }
    }

    pub fn events_out(mut self, path: &Path) -> Self {
        self.events_out = Some(path.to_path_buf());
        self
    }

    pub fn metrics_out(mut self, path: &Path) -> Self {
        self.metrics_out = Some(path.to_path_buf());
        self
    }

    /// Launches coordinator → router → workers, waits for every
    /// process, and parses the coordinator's summary.
    pub fn run(&self) -> io::Result<ClusterOutcome> {
        let n = self.num_workers.to_string();
        let mut coord_args = vec![
            "--listen".into(),
            "127.0.0.1:0".into(),
            "--workers".into(),
            n.clone(),
        ];
        if let Some(out) = &self.events_out {
            coord_args.push("--out".into());
            coord_args.push(out.display().to_string());
        }
        let mut coordinator = ChildGuard(
            Some(spawn(&bin_path("rfid-coordinator")?, &coord_args)?),
            "coordinator",
        );
        let coord_addr = wait_listening(coordinator.child(), "coordinator")?;

        let mut router_args = vec![
            "--listen".into(),
            "127.0.0.1:0".into(),
            "--workers".into(),
            n.clone(),
            "--scenario".into(),
            self.scenario.clone(),
        ];
        if let Some(out) = &self.metrics_out {
            router_args.push("--metrics-out".into());
            router_args.push(out.display().to_string());
        }
        let mut router = ChildGuard(
            Some(spawn(&bin_path("rfid-router")?, &router_args)?),
            "router",
        );
        let router_addr = wait_listening(router.child(), "router")?;

        let worker_bin = bin_path("rfid-worker")?;
        let mut workers = Vec::with_capacity(self.num_workers);
        for i in 0..self.num_workers {
            let args = vec![
                "--index".into(),
                i.to_string(),
                "--router".into(),
                router_addr.clone(),
                "--coordinator".into(),
                coord_addr.clone(),
                "--scenario".into(),
                self.scenario.clone(),
            ];
            workers.push(ChildGuard(Some(spawn(&worker_bin, &args)?), "worker"));
        }

        for w in workers {
            wait_success(w)?;
        }
        wait_success(router)?;
        let mut done = wait_success(coordinator)?;
        let mut tail = String::new();
        if let Some(mut out) = done.stdout.take() {
            out.read_to_string(&mut tail)?;
        }
        parse_summary(&tail)
    }
}

fn parse_summary(stdout: &str) -> io::Result<ClusterOutcome> {
    let mut events = None;
    let mut digest = None;
    for line in stdout.lines() {
        if let Some(v) = line.strip_prefix("events ") {
            events = v.trim().parse::<usize>().ok();
        } else if let Some(v) = line.strip_prefix("digest 0x") {
            digest = u64::from_str_radix(v.trim(), 16).ok();
        }
    }
    match (events, digest) {
        (Some(events), Some(digest)) => Ok(ClusterOutcome { events, digest }),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("coordinator summary missing events/digest lines: {stdout:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_parses_and_rejects_garbage() {
        let ok = parse_summary("events 12\ndigest 0x00ff00ff00ff00ff\n").unwrap();
        assert_eq!(ok.events, 12);
        assert_eq!(ok.digest, 0x00ff00ff00ff00ff);
        assert!(parse_summary("nothing to see").is_err());
    }
}
