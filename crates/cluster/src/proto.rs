//! The cluster's control-plane messages, serialized over the shared
//! length-prefixed framing ([`rfid_stream::wire`]).
//!
//! Every payload starts with a one-byte message kind. Integers are
//! little-endian; `f64`s travel as raw bit patterns (`to_bits`), so a
//! decoded plan or directive is **bit-identical** to the encoded one —
//! the cluster's equivalence gate tolerates no rounding. The event
//! data plane (worker → coordinator) reuses the `EVENTS_*` frames of
//! [`rfid_stream::wire::WireEventSink`] unchanged.
//!
//! Decoding is strict: short payloads, unknown kinds, and trailing
//! bytes are all typed [`WireFormatError`]s, never panics or silent
//! truncation (the adversarial suite in this module drives every
//! byte-boundary cut).

use rfid_core::engine::cluster::{EpochPlan, ResampleDirective, TaskReport};
use rfid_core::factored::reader::ReaderRemap;
use rfid_core::particle::ReaderParticle;
use rfid_obs::{HistogramSnapshot, Snapshot, Value, HISTOGRAM_BUCKETS};
use rfid_stream::wire::{
    self, put_f64, put_pose, put_str, put_u32, put_u64, put_u8, PayloadReader, WireFormatError,
    DEFAULT_MAX_FRAME_LEN,
};
use rfid_stream::{Epoch, TagId};
use std::io::{self, Read, Write};

/// Worker → router/coordinator: identifies the connection.
pub const MSG_HELLO: u8 = 0x10;
/// Router → worker: one epoch's plan (this worker's partition only).
pub const MSG_PLAN: u8 = 0x11;
/// Worker → router: the stepped objects' task reports.
pub const MSG_REPORTS: u8 = 0x12;
/// Router → worker: the resample directive (will-resample epochs only).
pub const MSG_RESAMPLE: u8 = 0x13;
/// Router → worker: end of trace; finalize and shut down.
pub const MSG_FINISH: u8 = 0x14;
/// Worker → router: a registry snapshot, piggybacked after each
/// REPORTS frame (and once more after FINISH, covering the final
/// resample and flush). The router keeps the latest snapshot per
/// worker and merges them into the cluster-wide view.
pub const MSG_METRICS: u8 = 0x15;

/// Writes one message frame (kind byte + body).
pub fn write_msg<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    wire::write_frame(w, payload, DEFAULT_MAX_FRAME_LEN)?;
    w.flush()
}

/// Reads one message frame; `Ok(None)` on clean EOF at a boundary.
pub fn read_msg<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    wire::read_frame(r, DEFAULT_MAX_FRAME_LEN)
}

fn format_err(e: WireFormatError) -> io::Error {
    e.into()
}

/// Expects the next frame to carry `kind`, returning its body reader
/// position past the kind byte.
pub fn expect_msg<R: Read>(r: &mut R, kind: u8) -> io::Result<Vec<u8>> {
    let payload = read_msg(r)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("peer closed while a 0x{kind:02x} message was expected"),
        )
    })?;
    if payload.first() != Some(&kind) {
        return Err(format_err(WireFormatError::BadTag(
            payload.first().copied().unwrap_or(0xFF),
        )));
    }
    Ok(payload)
}

pub fn encode_hello(index: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    put_u8(&mut out, MSG_HELLO);
    put_u32(&mut out, index);
    out
}

pub fn decode_hello(payload: &[u8]) -> Result<u32, WireFormatError> {
    let mut r = PayloadReader::new(payload);
    match r.u8()? {
        MSG_HELLO => {}
        other => return Err(WireFormatError::BadTag(other)),
    }
    let index = r.u32()?;
    r.finish()?;
    Ok(index)
}

fn put_reader(out: &mut Vec<u8>, reader: &[ReaderParticle]) {
    put_u32(out, reader.len() as u32);
    for p in reader {
        put_pose(out, &p.pose);
        put_f64(out, p.log_w);
    }
}

fn take_reader(r: &mut PayloadReader<'_>) -> Result<Vec<ReaderParticle>, WireFormatError> {
    let n = r.u32()? as usize;
    let mut reader = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let pose = r.pose()?;
        let log_w = r.f64()?;
        reader.push(ReaderParticle { pose, log_w });
    }
    Ok(reader)
}

/// Encodes worker `index`'s view of a plan: the shared reader state
/// plus only that worker's readings partition.
pub fn encode_plan(plan: &EpochPlan, index: usize) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, MSG_PLAN);
    put_u64(&mut out, plan.epoch.0);
    put_pose(&mut out, &plan.reader_est);
    put_u8(&mut out, plan.will_resample as u8);
    put_reader(&mut out, &plan.reader);
    let readings = &plan.readings[index];
    put_u32(&mut out, readings.len() as u32);
    for tag in readings {
        put_u64(&mut out, tag.0);
    }
    out
}

/// Decodes a worker-view plan. The result has exactly one readings
/// partition — drive it with `process_epoch(&plan, 0, …)`.
pub fn decode_plan(payload: &[u8]) -> Result<EpochPlan, WireFormatError> {
    let mut r = PayloadReader::new(payload);
    match r.u8()? {
        MSG_PLAN => {}
        other => return Err(WireFormatError::BadTag(other)),
    }
    let epoch = Epoch(r.u64()?);
    let reader_est = r.pose()?;
    let will_resample = r.u8()? != 0;
    let reader = take_reader(&mut r)?;
    let n = r.u32()? as usize;
    let mut readings = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        readings.push(TagId(r.u64()?));
    }
    r.finish()?;
    Ok(EpochPlan {
        epoch,
        reader_est,
        will_resample,
        reader,
        readings: vec![readings],
    })
}

pub fn encode_reports(epoch: Epoch, reports: &[TaskReport]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, MSG_REPORTS);
    put_u64(&mut out, epoch.0);
    put_u32(&mut out, reports.len() as u32);
    for t in reports {
        put_u64(&mut out, t.tag.0);
        put_u32(&mut out, t.support.len() as u32);
        for v in &t.support {
            put_f64(&mut out, *v);
        }
        put_u32(&mut out, t.reader_hist.len() as u32);
        for c in &t.reader_hist {
            put_u32(&mut out, *c);
        }
    }
    out
}

pub fn decode_reports(payload: &[u8]) -> Result<(Epoch, Vec<TaskReport>), WireFormatError> {
    let mut r = PayloadReader::new(payload);
    match r.u8()? {
        MSG_REPORTS => {}
        other => return Err(WireFormatError::BadTag(other)),
    }
    let epoch = Epoch(r.u64()?);
    let n = r.u32()? as usize;
    let mut reports = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let tag = TagId(r.u64()?);
        let ns = r.u32()? as usize;
        let mut support = Vec::with_capacity(ns.min(1 << 20));
        for _ in 0..ns {
            support.push(r.f64()?);
        }
        let nh = r.u32()? as usize;
        let mut reader_hist = Vec::with_capacity(nh.min(1 << 20));
        for _ in 0..nh {
            reader_hist.push(r.u32()?);
        }
        reports.push(TaskReport {
            tag,
            support,
            reader_hist,
        });
    }
    r.finish()?;
    Ok((epoch, reports))
}

/// Encodes worker `index`'s view of a resample directive: the shared
/// remap and post-resample reader, plus only the draw lists for tags
/// that worker owns (`tag % num_workers == index`).
pub fn encode_resample(d: &ResampleDirective, index: usize, num_workers: usize) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, MSG_RESAMPLE);
    let fd = d.remap.first_descendant();
    put_u32(&mut out, fd.len() as u32);
    for slot in fd {
        match slot {
            Some(v) => {
                put_u8(&mut out, 1);
                put_u32(&mut out, *v);
            }
            None => {
                put_u8(&mut out, 0);
                put_u32(&mut out, 0);
            }
        }
    }
    put_u32(&mut out, d.remap.num_new());
    put_reader(&mut out, &d.reader);
    let mine: Vec<&(TagId, Vec<u32>)> = d
        .draws
        .iter()
        .filter(|(tag, _)| (tag.0 % num_workers as u64) as usize == index)
        .collect();
    put_u32(&mut out, mine.len() as u32);
    for (tag, vals) in mine {
        put_u64(&mut out, tag.0);
        put_u32(&mut out, vals.len() as u32);
        for v in vals {
            put_u32(&mut out, *v);
        }
    }
    out
}

pub fn decode_resample(payload: &[u8]) -> Result<ResampleDirective, WireFormatError> {
    let mut r = PayloadReader::new(payload);
    match r.u8()? {
        MSG_RESAMPLE => {}
        other => return Err(WireFormatError::BadTag(other)),
    }
    let nf = r.u32()? as usize;
    let mut fd = Vec::with_capacity(nf.min(1 << 20));
    for _ in 0..nf {
        let present = r.u8()? != 0;
        let v = r.u32()?;
        fd.push(present.then_some(v));
    }
    let num_new = r.u32()?;
    let reader = take_reader(&mut r)?;
    let nd = r.u32()? as usize;
    let mut draws = Vec::with_capacity(nd.min(1 << 20));
    for _ in 0..nd {
        let tag = TagId(r.u64()?);
        let nv = r.u32()? as usize;
        let mut vals = Vec::with_capacity(nv.min(1 << 20));
        for _ in 0..nv {
            vals.push(r.u32()?);
        }
        draws.push((tag, vals));
    }
    r.finish()?;
    Ok(ResampleDirective {
        remap: ReaderRemap::from_parts(fd, num_new),
        reader,
        draws,
    })
}

const VALUE_COUNTER: u8 = 0;
const VALUE_GAUGE: u8 = 1;
const VALUE_HISTOGRAM: u8 = 2;

/// Encodes one registry snapshot. Histograms ship only their nonzero
/// buckets (index + count pairs), so a quiet worker's frame stays
/// tiny.
pub fn encode_metrics(epoch: Epoch, snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, MSG_METRICS);
    put_u64(&mut out, epoch.0);
    put_u32(&mut out, snap.entries().len() as u32);
    for (name, value) in snap.entries() {
        put_str(&mut out, name);
        match value {
            Value::Counter(v) => {
                put_u8(&mut out, VALUE_COUNTER);
                put_u64(&mut out, *v);
            }
            Value::Gauge(v) => {
                put_u8(&mut out, VALUE_GAUGE);
                put_u64(&mut out, *v);
            }
            Value::Histogram(h) => {
                put_u8(&mut out, VALUE_HISTOGRAM);
                put_u64(&mut out, h.count);
                put_u64(&mut out, h.sum);
                let nonzero = h.buckets.iter().filter(|b| **b != 0).count();
                put_u32(&mut out, nonzero as u32);
                for (i, b) in h.buckets.iter().enumerate() {
                    if *b != 0 {
                        put_u8(&mut out, i as u8);
                        put_u64(&mut out, *b);
                    }
                }
            }
        }
    }
    out
}

pub fn decode_metrics(payload: &[u8]) -> Result<(Epoch, Snapshot), WireFormatError> {
    let mut r = PayloadReader::new(payload);
    match r.u8()? {
        MSG_METRICS => {}
        other => return Err(WireFormatError::BadTag(other)),
    }
    let epoch = Epoch(r.u64()?);
    let n = r.u32()? as usize;
    let mut entries = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let name = r.str_field()?.to_string();
        let value = match r.u8()? {
            VALUE_COUNTER => Value::Counter(r.u64()?),
            VALUE_GAUGE => Value::Gauge(r.u64()?),
            VALUE_HISTOGRAM => {
                let mut h = HistogramSnapshot {
                    count: r.u64()?,
                    sum: r.u64()?,
                    ..HistogramSnapshot::default()
                };
                let nb = r.u32()? as usize;
                for _ in 0..nb {
                    let i = r.u8()? as usize;
                    if i >= HISTOGRAM_BUCKETS {
                        return Err(WireFormatError::BadTag(i as u8));
                    }
                    h.buckets[i] = r.u64()?;
                }
                Value::Histogram(h)
            }
            other => return Err(WireFormatError::BadTag(other)),
        };
        entries.push((name, value));
    }
    r.finish()?;
    Ok((epoch, Snapshot::from_entries(entries)))
}

pub fn encode_finish(last_epoch: Epoch) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    put_u8(&mut out, MSG_FINISH);
    put_u64(&mut out, last_epoch.0);
    out
}

pub fn decode_finish(payload: &[u8]) -> Result<Epoch, WireFormatError> {
    let mut r = PayloadReader::new(payload);
    match r.u8()? {
        MSG_FINISH => {}
        other => return Err(WireFormatError::BadTag(other)),
    }
    let e = Epoch(r.u64()?);
    r.finish()?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::{Point3, Pose};

    fn particle(i: u64) -> ReaderParticle {
        ReaderParticle {
            pose: Pose {
                pos: Point3::new(i as f64 + 0.125, -(i as f64), 2.5),
                phi: 0.1 * i as f64,
            },
            log_w: -(i as f64) * 0.75,
        }
    }

    fn sample_plan() -> EpochPlan {
        EpochPlan {
            epoch: Epoch(42),
            reader_est: Pose {
                pos: Point3::new(1.0, 2.0, 3.0),
                phi: 0.5,
            },
            will_resample: true,
            reader: (0..3).map(particle).collect(),
            readings: vec![vec![TagId(0), TagId(2)], vec![TagId(1), TagId(3)]],
        }
    }

    #[test]
    fn plan_roundtrips_bit_exactly_per_worker() {
        let plan = sample_plan();
        for index in 0..2 {
            let enc = encode_plan(&plan, index);
            let dec = decode_plan(&enc).expect("decode");
            assert_eq!(dec.epoch, plan.epoch);
            assert_eq!(dec.will_resample, plan.will_resample);
            assert_eq!(
                dec.reader_est.pos.x.to_bits(),
                plan.reader_est.pos.x.to_bits()
            );
            assert_eq!(dec.reader_est.phi.to_bits(), plan.reader_est.phi.to_bits());
            assert_eq!(dec.reader.len(), plan.reader.len());
            for (a, b) in dec.reader.iter().zip(&plan.reader) {
                assert_eq!(a.pose.pos.y.to_bits(), b.pose.pos.y.to_bits());
                assert_eq!(a.log_w.to_bits(), b.log_w.to_bits());
            }
            assert_eq!(dec.readings, vec![plan.readings[index].clone()]);
        }
    }

    #[test]
    fn reports_roundtrip() {
        let reports = vec![
            TaskReport {
                tag: TagId(7),
                support: vec![0.25, -1.5, f64::MIN_POSITIVE],
                reader_hist: vec![3, 0, 9],
            },
            TaskReport {
                tag: TagId(11),
                support: vec![],
                reader_hist: vec![],
            },
        ];
        let enc = encode_reports(Epoch(9), &reports);
        let (epoch, dec) = decode_reports(&enc).expect("decode");
        assert_eq!(epoch, Epoch(9));
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[0].tag, TagId(7));
        assert_eq!(dec[0].support[2].to_bits(), f64::MIN_POSITIVE.to_bits());
        assert_eq!(dec[0].reader_hist, vec![3, 0, 9]);
        assert_eq!(dec[1].support.len(), 0);
    }

    #[test]
    fn resample_roundtrips_and_partitions_draws() {
        let d = ResampleDirective {
            remap: ReaderRemap::from_parts(vec![Some(0), None, Some(1)], 2),
            reader: (0..2).map(particle).collect(),
            draws: vec![
                (TagId(0), vec![1, 0]),
                (TagId(1), vec![]),
                (TagId(2), vec![0]),
                (TagId(3), vec![1, 1, 0]),
            ],
        };
        // worker 1 of 2 owns the odd tags only
        let enc = encode_resample(&d, 1, 2);
        let dec = decode_resample(&enc).expect("decode");
        assert_eq!(dec.remap.first_descendant(), d.remap.first_descendant());
        assert_eq!(dec.remap.num_new(), 2);
        assert_eq!(dec.reader.len(), 2);
        assert_eq!(
            dec.draws,
            vec![(TagId(1), vec![]), (TagId(3), vec![1, 1, 0])]
        );
    }

    /// A snapshot with all three metric kinds, built from a scratch
    /// registry.
    fn sample_metrics() -> Snapshot {
        let reg = rfid_obs::Registry::new();
        reg.counter("engine_epochs_total").add(12);
        reg.gauge("pipeline_sync_pending_high_water").set(3);
        let h = reg.histogram("engine_infer_us");
        h.record(0);
        h.record(900);
        h.record(1_000_000);
        reg.snapshot()
    }

    #[test]
    fn metrics_roundtrip_bit_exactly() {
        let snap = sample_metrics();
        let enc = encode_metrics(Epoch(6), &snap);
        let (epoch, dec) = decode_metrics(&enc).expect("decode");
        assert_eq!(epoch, Epoch(6));
        assert_eq!(dec, snap);
        // an empty snapshot also roundtrips
        let empty = Snapshot::default();
        let (_, dec) = decode_metrics(&encode_metrics(Epoch(0), &empty)).unwrap();
        assert_eq!(dec, empty);
    }

    #[test]
    fn metrics_with_bad_bucket_index_is_rejected() {
        let snap = sample_metrics();
        let mut enc = encode_metrics(Epoch(1), &snap);
        // the first histogram bucket index byte follows:
        // kind(1) + epoch(8) + n(4) + entries... locate by scanning
        // for the histogram marker after its name
        let name = b"engine_infer_us";
        let at = enc
            .windows(name.len())
            .position(|w| w == name)
            .expect("name present");
        // name + kind byte + count(8) + sum(8) + nonzero(4) → index
        let idx_pos = at + name.len() + 1 + 8 + 8 + 4;
        enc[idx_pos] = 200; // out of range
        assert!(matches!(
            decode_metrics(&enc),
            Err(WireFormatError::BadTag(200))
        ));
    }

    #[test]
    fn hello_and_finish_roundtrip() {
        assert_eq!(decode_hello(&encode_hello(3)).unwrap(), 3);
        assert_eq!(decode_finish(&encode_finish(Epoch(77))).unwrap(), Epoch(77));
    }

    // ---- adversarial decoding: the cluster framing must fail typed,
    // never panic or over-allocate ----

    #[test]
    fn truncation_at_every_byte_boundary_is_a_typed_error() {
        let frames: Vec<Vec<u8>> = vec![
            encode_plan(&sample_plan(), 0),
            encode_reports(
                Epoch(3),
                &[TaskReport {
                    tag: TagId(1),
                    support: vec![1.0],
                    reader_hist: vec![2],
                }],
            ),
            encode_resample(
                &ResampleDirective {
                    remap: ReaderRemap::from_parts(vec![None, Some(0)], 1),
                    reader: vec![particle(0)],
                    draws: vec![(TagId(0), vec![0])],
                },
                0,
                1,
            ),
            encode_hello(1),
            encode_finish(Epoch(5)),
            encode_metrics(Epoch(2), &sample_metrics()),
        ];
        for full in frames {
            for cut in 0..full.len() {
                let part = &full[..cut];
                // whichever decoder matches the kind must reject the cut
                let outcome: Result<(), WireFormatError> = match full[0] {
                    MSG_PLAN => decode_plan(part).map(|_| ()),
                    MSG_REPORTS => decode_reports(part).map(|_| ()),
                    MSG_RESAMPLE => decode_resample(part).map(|_| ()),
                    MSG_HELLO => decode_hello(part).map(|_| ()),
                    MSG_FINISH => decode_finish(part).map(|_| ()),
                    MSG_METRICS => decode_metrics(part).map(|_| ()),
                    other => panic!("unexpected kind {other}"),
                };
                assert!(
                    outcome.is_err(),
                    "kind 0x{:02x} cut at byte {cut}/{} decoded",
                    full[0],
                    full.len()
                );
            }
        }
    }

    #[test]
    fn garbage_after_a_valid_message_is_trailing_bytes() {
        let mut enc = encode_hello(0);
        enc.extend_from_slice(&[0xAB, 0xCD]);
        match decode_hello(&enc) {
            Err(WireFormatError::TrailingBytes(2)) => {}
            other => panic!("wanted TrailingBytes(2), got {other:?}"),
        }
    }

    #[test]
    fn wrong_kind_is_bad_tag() {
        let enc = encode_hello(0);
        assert!(matches!(
            decode_plan(&enc),
            Err(WireFormatError::BadTag(MSG_HELLO))
        ));
    }

    #[test]
    fn oversized_frame_is_refused_before_allocation() {
        // a length prefix claiming 1 GiB against the default cap
        let mut buf: &[u8] = &(1u32 << 30).to_be_bytes();
        let err = read_msg(&mut buf).expect_err("oversized");
        assert!(wire::OversizedFrame::from_io(&err).is_some(), "{err}");
    }
}
