//! The worker process: a [`ClusterWorker`] over one `tag % N` object
//! partition, fed plans by the router and streaming its due events to
//! the coordinator (one `EVENTS` frame per epoch — the frame itself is
//! the epoch barrier, even when empty).

use crate::proto;
use crate::scenario::Engine;
use rfid_core::engine::cluster::ClusterWorker;
use rfid_stream::wire::WireEventSink;
use rfid_stream::{EventSink, LocationEvent};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// Runs the worker loop until the router sends FINISH. `index` must
/// match the `--index` the launcher assigned; it selects the readings
/// partition in every plan.
pub fn run_worker(
    index: usize,
    router: TcpStream,
    coordinator: TcpStream,
    engine: Engine,
) -> io::Result<()> {
    router.set_nodelay(true)?;
    coordinator.set_nodelay(true)?;
    let mut rr = BufReader::new(router.try_clone()?);
    let mut rw = BufWriter::new(router);
    proto::write_msg(&mut rw, &proto::encode_hello(index as u32))?;

    let mut cw = BufWriter::new(coordinator);
    proto::write_msg(&mut cw, &proto::encode_hello(index as u32))?;
    let mut events_out = WireEventSink::new(cw);

    let mut worker = ClusterWorker::new(engine);
    let mut events: Vec<LocationEvent> = Vec::new();
    loop {
        let Some(payload) = proto::read_msg(&mut rr)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "router closed before FINISH",
            ));
        };
        match payload.first().copied() {
            Some(proto::MSG_PLAN) => {
                let plan = proto::decode_plan(&payload).map_err(io::Error::from)?;
                events.clear();
                // the wire plan carries only this worker's partition
                let reports = worker.process_epoch(&plan, 0, &mut events);
                for e in &events {
                    events_out.on_event(e);
                }
                events_out.on_epoch_complete(plan.epoch);
                if let Some(e) = events_out.io_error() {
                    return Err(io::Error::new(e.kind(), e.to_string()));
                }
                proto::write_msg(&mut rw, &proto::encode_reports(plan.epoch, &reports))?;
                // piggyback this process's registry snapshot on the
                // epoch barrier (engine stage timers, step counters)
                worker.observe_metrics();
                let snap = rfid_obs::global().snapshot();
                proto::write_msg(&mut rw, &proto::encode_metrics(plan.epoch, &snap))?;
                let directive = if plan.will_resample {
                    let payload = proto::expect_msg(&mut rr, proto::MSG_RESAMPLE)?;
                    Some(proto::decode_resample(&payload).map_err(io::Error::from)?)
                } else {
                    None
                };
                worker.apply_resample(plan.epoch, directive.as_ref());
            }
            Some(proto::MSG_FINISH) => {
                let last_epoch = proto::decode_finish(&payload).map_err(io::Error::from)?;
                events.clear();
                worker.finalize_into(last_epoch, &mut events);
                for e in &events {
                    events_out.on_event(e);
                }
                events_out.on_finish();
                if let Some(e) = events_out.io_error() {
                    return Err(io::Error::new(e.kind(), e.to_string()));
                }
                // one final snapshot so the cluster view includes the
                // last epoch's resample and the finalize flush
                worker.observe_metrics();
                let snap = rfid_obs::global().snapshot();
                proto::write_msg(&mut rw, &proto::encode_metrics(last_epoch, &snap))?;
                rw.flush()?;
                return Ok(());
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected message kind {other:?} from the router"),
                ))
            }
        }
    }
}
