//! Minimal `--flag value` parsing shared by the three cluster
//! binaries (kept dependency-free; unknown flags are an error).

use std::collections::HashMap;

/// Parses `std::env::args` into a flag → value map. Exits with status
/// 2 on an unknown flag or a flag without a value.
pub fn parse(known: &[&str]) -> HashMap<String, String> {
    parse_from(known, std::env::args().skip(1))
}

fn parse_from(known: &[&str], args: impl IntoIterator<Item = String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        if !known.contains(&flag.as_str()) {
            eprintln!("unknown flag {flag:?}");
            std::process::exit(2);
        }
        let Some(value) = args.next() else {
            eprintln!("flag {flag} needs a value");
            std::process::exit(2);
        };
        out.insert(flag, value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_in_any_order() {
        let got = parse_from(&["--a", "--b"], ["--b", "2", "--a", "1"].map(String::from));
        assert_eq!(got.get("--a").map(String::as_str), Some("1"));
        assert_eq!(got.get("--b").map(String::as_str), Some("2"));
    }
}
