//! The coordinator process: accepts one event stream per worker and
//! reconstructs the single-process emission order, one epoch at a
//! time. Every worker sends exactly one `EVENTS` frame per epoch (even
//! when it emitted nothing), so a round of frames *is* the epoch
//! barrier; within a round the lists are k-way merged by tag —
//! `shard::merge_by_tag` semantics over the wire.

use crate::proto;
use rfid_stream::digest::event_digest;
use rfid_stream::wire::{
    self, decode_event_frame, merge_events_by_tag, EventFrame, EVENTS_EPOCH, EVENTS_FINAL,
};
use rfid_stream::LocationEvent;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpListener;
use std::path::Path;

/// The merged output of a cluster run.
#[derive(Debug, Clone)]
pub struct MergedEvents {
    pub events: Vec<LocationEvent>,
    /// FNV-1a digest over the merged stream — comparable to the
    /// committed golden digests and the single-process engine.
    pub digest: u64,
}

/// Accepts `num_workers` event streams and merges them to completion
/// (one `EVENTS_FINAL` frame per worker ends the run).
pub fn run_coordinator(listener: &TcpListener, num_workers: usize) -> io::Result<MergedEvents> {
    let mut conns: Vec<Option<BufReader<std::net::TcpStream>>> =
        (0..num_workers).map(|_| None).collect();
    for _ in 0..num_workers {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        let mut r = BufReader::new(stream);
        let hello = proto::expect_msg(&mut r, proto::MSG_HELLO)?;
        let index = proto::decode_hello(&hello).map_err(io::Error::from)? as usize;
        if index >= num_workers || conns[index].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad or duplicate worker index {index}"),
            ));
        }
        conns[index] = Some(r);
    }
    let mut conns: Vec<BufReader<std::net::TcpStream>> = conns
        .into_iter()
        .map(|c| c.expect("all slots filled"))
        .collect();
    merge_streams(&mut conns)
}

/// The transport-free merge core (driven directly by unit tests).
fn merge_streams<R: Read>(conns: &mut [BufReader<R>]) -> io::Result<MergedEvents> {
    let mut merged: Vec<LocationEvent> = Vec::new();
    let mut round: Vec<Vec<LocationEvent>> = vec![Vec::new(); conns.len()];
    loop {
        let mut kinds = [0usize; 2];
        let mut epoch = None;
        for (i, conn) in conns.iter_mut().enumerate() {
            let Some(payload) = proto::read_msg(conn)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("worker {i} closed mid-run"),
                ));
            };
            let EventFrame {
                kind,
                epoch: e,
                events,
            } = decode_event_frame(&payload).map_err(io::Error::from)?;
            kinds[usize::from(kind == EVENTS_FINAL)] += 1;
            if kind == EVENTS_EPOCH {
                match epoch {
                    None => epoch = Some(e),
                    Some(prev) if prev != e => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "worker {i} is at epoch {} while the round is at {}",
                                e.0, prev.0
                            ),
                        ));
                    }
                    Some(_) => {}
                }
            }
            round[i] = events;
        }
        if kinds[0] != 0 && kinds[1] != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "workers disagree on end-of-run",
            ));
        }
        merge_events_by_tag(&round, &mut merged);
        if kinds[1] == conns.len() {
            break;
        }
    }
    let digest = event_digest(&merged);
    Ok(MergedEvents {
        events: merged,
        digest,
    })
}

/// Writes a merged stream to a file: `count u64`, then each event in
/// the wire encoding (bit-exact; see [`wire::encode_event`]).
pub fn write_events_file(path: &Path, events: &[LocationEvent]) -> io::Result<()> {
    let mut out = Vec::new();
    wire::put_u64(&mut out, events.len() as u64);
    for e in events {
        wire::encode_event(e, &mut out);
    }
    let mut f = BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&out)?;
    f.flush()
}

/// Reads a file written by [`write_events_file`].
pub fn read_events_file(path: &Path) -> io::Result<Vec<LocationEvent>> {
    let buf = std::fs::read(path)?;
    let mut r = wire::PayloadReader::new(&buf);
    let parse =
        |r: &mut wire::PayloadReader<'_>| -> Result<Vec<LocationEvent>, wire::WireFormatError> {
            let n = r.u64()? as usize;
            let mut events = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                events.push(wire::decode_event(r)?);
            }
            Ok(events)
        };
    let events = parse(&mut r).map_err(io::Error::from)?;
    r.finish().map_err(io::Error::from)?;
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Point3;
    use rfid_stream::wire::WireEventSink;
    use rfid_stream::{Epoch, EventSink, TagId};

    fn ev(epoch: u64, tag: u64) -> LocationEvent {
        LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(tag as f64, 0.5, -0.0))
    }

    /// Two workers' streams (hello-free, as `merge_streams` takes them)
    /// interleave back into global tag order, epoch by epoch.
    #[test]
    fn merge_reconstructs_global_order_across_streams() {
        let mut streams = Vec::new();
        for (worker, tags) in [[0u64, 2], [1, 3]].iter().enumerate() {
            let mut buf = Vec::new();
            let mut sink = WireEventSink::new(&mut buf);
            for epoch in 0..3u64 {
                for t in tags {
                    // worker 1's epoch-1 frame is deliberately empty
                    if !(worker == 1 && epoch == 1) {
                        sink.on_event(&ev(epoch, *t));
                    }
                }
                sink.on_epoch_complete(Epoch(epoch));
            }
            sink.on_event(&ev(3, tags[0]));
            sink.on_finish();
            assert!(sink.io_error().is_none());
            streams.push(buf);
        }
        let mut conns: Vec<BufReader<&[u8]>> = streams
            .iter()
            .map(|s| BufReader::new(s.as_slice()))
            .collect();
        let merged = merge_streams(&mut conns).expect("merge");
        let tags: Vec<u64> = merged.events.iter().map(|e| e.tag.0).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 0, 2, 0, 1, 2, 3, 0, 1]);
        let epochs: Vec<u64> = merged.events.iter().map(|e| e.epoch.0).collect();
        assert_eq!(epochs, vec![0, 0, 0, 0, 1, 1, 2, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn a_worker_dying_mid_run_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        let mut sink = WireEventSink::new(&mut buf);
        sink.on_event(&ev(0, 0));
        sink.on_epoch_complete(Epoch(0));
        // stream ends without an EVENTS_FINAL frame
        let mut conns = vec![BufReader::new(buf.as_slice())];
        let err = merge_streams(&mut conns).expect_err("mid-run EOF");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn events_file_roundtrips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("rfid-cluster-evfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.bin");
        let events = vec![ev(0, 1), ev(5, 2)];
        write_events_file(&path, &events).unwrap();
        let back = read_events_file(&path).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in back.iter().zip(&events) {
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.tag, b.tag);
            assert_eq!(a.location.z.to_bits(), b.location.z.to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
