//! The golden-trace scenarios and their pinned configurations, shared
//! by every process of a cluster run (each process rebuilds the same
//! engine from the scenario name) and by the recovery/cluster
//! harnesses in `rfid-bench`.

use rfid_core::engine::run_engine;
use rfid_core::{FilterConfig, InferenceEngine};
use rfid_model::sensor::ConeSensor;
use rfid_model::{JointModel, ModelParams};
use rfid_sim::scenario::{self, Scenario};
use rfid_sim::WarehouseLayout;
use rfid_stream::LocationEvent;

/// The engine type every cluster process runs.
pub type Engine = InferenceEngine<WarehouseLayout, ConeSensor>;

/// The three golden-trace scenarios (plus `"tiny"`, a fast variant for
/// harness self-tests), with the same pinned configurations the
/// golden-trace digests are committed under.
pub fn canonical_scenario(name: &str) -> Option<(Scenario, FilterConfig)> {
    let pinned = |particles: usize| {
        let mut cfg = FilterConfig::full_default();
        cfg.particles_per_object = particles;
        cfg.reader_particles = 60;
        cfg.report_delay_epochs = 30;
        cfg
    };
    match name {
        "small_warehouse" => Some((scenario::small_trace(10, 4, 2024), pinned(250))),
        "low_read_rate" => Some((scenario::read_rate_trace(0.7, 333), pinned(200))),
        "moving_object" => Some((scenario::moving_object_trace(6.0, 200, 666), pinned(150))),
        "tiny" => Some((scenario::small_trace(3, 2, 77), pinned(30))),
        _ => None,
    }
}

/// Builds the paper-default engine for a scenario. Every process of a
/// cluster run calls this with the same `(scenario, config)` pair —
/// seed included — which is what lets the head replay the reader
/// update and the workers replay their object partitions exactly.
pub fn build_engine(sc: &Scenario, cfg: &FilterConfig) -> Engine {
    let model = JointModel::with_sensor(
        ConeSensor::paper_default(),
        ModelParams::default_warehouse(),
    );
    InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), *cfg)
        .expect("valid config")
}

/// The single-process reference event stream — the exact bytes every
/// cluster run must reproduce.
pub fn reference_events(sc: &Scenario, cfg: &FilterConfig) -> Vec<LocationEvent> {
    let mut engine = build_engine(sc, cfg);
    run_engine(&mut engine, &sc.trace.epoch_batches())
}
