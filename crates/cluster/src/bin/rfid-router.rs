//! Router binary: binds, prints `LISTENING <addr>`, accepts
//! `--workers` connections, and drives the `--scenario` trace through
//! the cluster.
//!
//! ```text
//! rfid-router --listen 127.0.0.1:0 --workers 2 --scenario tiny
//! ```

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = rfid_cluster::cli::parse(&["--listen", "--workers", "--scenario", "--metrics-out"]);
    let (listen, workers, scenario) = match (
        args.get("--listen"),
        args.get("--workers").and_then(|w| w.parse::<usize>().ok()),
        args.get("--scenario"),
    ) {
        (Some(l), Some(w), Some(s)) if w >= 1 => (l.clone(), w, s.clone()),
        _ => {
            eprintln!(
                "usage: rfid-router --listen ADDR --workers N --scenario NAME \
                 [--metrics-out PATH]"
            );
            return ExitCode::from(2);
        }
    };
    let metrics_out = args.get("--metrics-out").cloned();
    let Some((sc, cfg)) = rfid_cluster::canonical_scenario(&scenario) else {
        eprintln!(
            "unknown scenario {scenario:?} (tiny, small_warehouse, low_read_rate, moving_object)"
        );
        return ExitCode::from(2);
    };
    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", listener.local_addr().expect("bound"));
    let _ = std::io::stdout().flush();
    let engine = rfid_cluster::build_engine(&sc, &cfg);
    match rfid_cluster::router::run_router(&listener, workers, engine, &sc.trace.epoch_batches()) {
        Ok(summary) => {
            println!(
                "epochs {} readings {} object_updates {} reader_resamples {}",
                summary.epochs, summary.readings, summary.object_updates, summary.reader_resamples
            );
            if let Some(path) = metrics_out {
                // the merged cluster-wide registry view, in the same
                // text exposition TELEMETRY serves
                if let Err(e) = std::fs::write(&path, summary.metrics.render()) {
                    eprintln!("router: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("router: {e}");
            ExitCode::FAILURE
        }
    }
}
