//! Worker binary: connects to the router and coordinator (with a
//! bounded retry while they come up), then runs the epoch loop over
//! its `tag % N` partition until the router sends FINISH.
//!
//! ```text
//! rfid-worker --index 0 --router ADDR --coordinator ADDR --scenario tiny
//! ```

use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn connect_retry(addr: &str, deadline: Duration) -> std::io::Result<TcpStream> {
    let start = Instant::now();
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if start.elapsed() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
}

fn main() -> ExitCode {
    let args = rfid_cluster::cli::parse(&["--index", "--router", "--coordinator", "--scenario"]);
    let (index, router, coordinator, scenario) = match (
        args.get("--index").and_then(|v| v.parse::<usize>().ok()),
        args.get("--router"),
        args.get("--coordinator"),
        args.get("--scenario"),
    ) {
        (Some(i), Some(r), Some(c), Some(s)) => (i, r.clone(), c.clone(), s.clone()),
        _ => {
            eprintln!(
                "usage: rfid-worker --index I --router ADDR --coordinator ADDR --scenario NAME"
            );
            return ExitCode::from(2);
        }
    };
    let Some((sc, cfg)) = rfid_cluster::canonical_scenario(&scenario) else {
        eprintln!("unknown scenario {scenario:?}");
        return ExitCode::from(2);
    };
    let deadline = Duration::from_secs(10);
    let (router, coordinator) = match (
        connect_retry(&router, deadline),
        connect_retry(&coordinator, deadline),
    ) {
        (Ok(r), Ok(c)) => (r, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("worker {index}: connect: {e}");
            return ExitCode::FAILURE;
        }
    };
    let engine = rfid_cluster::build_engine(&sc, &cfg);
    match rfid_cluster::worker::run_worker(index, router, coordinator, engine) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker {index}: {e}");
            ExitCode::FAILURE
        }
    }
}
