//! Coordinator binary: binds, prints `LISTENING <addr>`, accepts
//! `--workers` event streams, merges them per epoch in global tag
//! order, and reports `events <n>` / `digest 0x<hex>` on stdout.
//! `--out FILE` additionally writes the merged stream bit-exactly.
//!
//! ```text
//! rfid-coordinator --listen 127.0.0.1:0 --workers 2 [--out merged.bin]
//! ```

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = rfid_cluster::cli::parse(&["--listen", "--workers", "--out"]);
    let (listen, workers) = match (
        args.get("--listen"),
        args.get("--workers").and_then(|w| w.parse::<usize>().ok()),
    ) {
        (Some(l), Some(w)) if w >= 1 => (l.clone(), w),
        _ => {
            eprintln!("usage: rfid-coordinator --listen ADDR --workers N [--out FILE]");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", listener.local_addr().expect("bound"));
    let _ = std::io::stdout().flush();
    match rfid_cluster::coordinator::run_coordinator(&listener, workers) {
        Ok(merged) => {
            if let Some(path) = args.get("--out") {
                if let Err(e) = rfid_cluster::coordinator::write_events_file(
                    std::path::Path::new(path),
                    &merged.events,
                ) {
                    eprintln!("coordinator: write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            println!("events {}", merged.events.len());
            println!("digest {:#018x}", merged.digest);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("coordinator: {e}");
            ExitCode::FAILURE
        }
    }
}
