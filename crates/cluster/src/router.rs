//! The router process: owns the [`ClusterHead`] (reader filter +
//! engine RNG), splits each epoch's object readings by
//! `tag % num_workers`, and drives the per-epoch plan / reports /
//! resample exchange with every worker.

use crate::proto;
use crate::scenario::Engine;
use rfid_core::engine::cluster::{ClusterHead, TaskReport};
use rfid_stream::{Epoch, EpochBatch};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};

/// What the router observed over a completed run.
#[derive(Debug, Clone)]
pub struct RouterSummary {
    pub epochs: u64,
    pub readings: u64,
    /// Cluster-wide object steps (merged from the workers' reports).
    pub object_updates: u64,
    pub reader_resamples: u64,
    /// The cluster-wide registry view: every worker's final snapshot
    /// merged in metric-name order (counters and histogram buckets
    /// add, gauges max — the worker partitions are disjoint, so the
    /// sums are exact cluster totals). The head's own registry is not
    /// folded in: its epoch/reading counters re-count the same trace
    /// and would double the totals.
    pub metrics: rfid_obs::Snapshot,
}

struct WorkerConn {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
}

/// Accepts `num_workers` connections, keyed by the index each worker
/// announces in its HELLO.
fn accept_workers(listener: &TcpListener, num_workers: usize) -> io::Result<Vec<WorkerConn>> {
    let mut slots: Vec<Option<WorkerConn>> = (0..num_workers).map(|_| None).collect();
    for _ in 0..num_workers {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        let mut r = BufReader::new(stream.try_clone()?);
        let w = BufWriter::new(stream);
        let hello = proto::expect_msg(&mut r, proto::MSG_HELLO)?;
        let index = proto::decode_hello(&hello).map_err(io::Error::from)? as usize;
        if index >= num_workers || slots[index].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad or duplicate worker index {index}"),
            ));
        }
        slots[index] = Some(WorkerConn { r, w });
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect())
}

/// Runs the full trace through the cluster: one plan broadcast, one
/// report collection, and (on resample epochs) one directive broadcast
/// per epoch, then a FINISH barrier.
pub fn run_router(
    listener: &TcpListener,
    num_workers: usize,
    engine: Engine,
    batches: &[EpochBatch],
) -> io::Result<RouterSummary> {
    let mut conns = accept_workers(listener, num_workers)?;
    let mut head = ClusterHead::new(engine, num_workers);
    let mut last_epoch = Epoch(0);
    let mut worker_metrics: Vec<rfid_obs::Snapshot> =
        vec![rfid_obs::Snapshot::default(); num_workers];
    for batch in batches {
        last_epoch = batch.epoch;
        let plan = head.begin_epoch(batch);
        for (i, conn) in conns.iter_mut().enumerate() {
            proto::write_msg(&mut conn.w, &proto::encode_plan(&plan, i))?;
        }
        let mut reports: Vec<Vec<TaskReport>> = Vec::with_capacity(num_workers);
        for (i, conn) in conns.iter_mut().enumerate() {
            let payload = proto::expect_msg(&mut conn.r, proto::MSG_REPORTS)?;
            let (epoch, list) = proto::decode_reports(&payload).map_err(io::Error::from)?;
            if epoch != batch.epoch {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "reports for epoch {} while in epoch {}",
                        epoch.0, batch.epoch.0
                    ),
                ));
            }
            reports.push(list);
            let payload = proto::expect_msg(&mut conn.r, proto::MSG_METRICS)?;
            let (epoch, snap) = proto::decode_metrics(&payload).map_err(io::Error::from)?;
            if epoch != batch.epoch {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "metrics for epoch {} while in epoch {}",
                        epoch.0, batch.epoch.0
                    ),
                ));
            }
            worker_metrics[i] = snap;
        }
        let directive = head.finish_epoch(&reports);
        if directive.is_some() != plan.will_resample {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "resample prediction diverged from the resample decision",
            ));
        }
        if let Some(d) = &directive {
            for (i, conn) in conns.iter_mut().enumerate() {
                proto::write_msg(&mut conn.w, &proto::encode_resample(d, i, num_workers))?;
            }
        }
    }
    for conn in conns.iter_mut() {
        proto::write_msg(&mut conn.w, &proto::encode_finish(last_epoch))?;
        conn.w.flush()?;
    }
    // a worker acknowledges FINISH with one final metrics snapshot
    // (covering its finalize flush), then closes its connection
    for (i, conn) in conns.iter_mut().enumerate() {
        let payload = proto::expect_msg(&mut conn.r, proto::MSG_METRICS)?;
        let (_, snap) = proto::decode_metrics(&payload).map_err(io::Error::from)?;
        worker_metrics[i] = snap;
        let mut sink = [0u8; 64];
        loop {
            match conn.r.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected bytes after FINISH",
                    ))
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
    head.observe_metrics();
    let mut metrics = rfid_obs::Snapshot::default();
    for snap in &worker_metrics {
        metrics.merge(snap);
    }
    let stats = head.stats();
    Ok(RouterSummary {
        epochs: stats.epochs,
        readings: stats.readings,
        object_updates: stats.object_updates,
        reader_resamples: stats.reader_resamples,
        metrics,
    })
}
