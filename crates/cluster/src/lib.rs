//! Multi-process engine cluster: a **router** that owns the reader
//! half of the inference engine and splits the reading stream by
//! `tag % N`, **N worker processes** each running the engine over its
//! tag partition, and a **coordinator** that k-way-merges the workers'
//! emitted events back into global tag order per completed epoch.
//!
//! ```text
//!                       EpochPlan / ResampleDirective
//!             ┌───────────────────┬───────────────────┐
//!             ▼                   ▼                   ▼
//!        ┌─────────┐         ┌─────────┐         ┌─────────┐
//!        │ worker 0│         │ worker 1│   ...   │ worker N│
//!        └────┬────┘         └────┬────┘         └────┬────┘
//!   TaskReports│                  │                   │
//!             ▲│                 ▲│                  ▲│
//!        ┌────┴┴──────────────────┴───────────────────┴────┐
//!        │ router (ClusterHead: reader filter + engine RNG)│
//!        └─────────────────────────────────────────────────┘
//!              events │ (one frame per epoch per worker)
//!                     ▼
//!        ┌─────────────────────────────────────────────────┐
//!        │ coordinator (merge_events_by_tag, per epoch)    │
//!        └─────────────────────────────────────────────────┘
//! ```
//!
//! The split itself — why the event stream stays **bit-identical** to
//! the single-process engine for every worker count — lives in
//! [`rfid_core::engine::cluster`]. This crate adds the transport: a
//! binary message layer ([`proto`]) over the same 4-byte big-endian
//! length-prefixed framing the query server speaks
//! ([`rfid_stream::wire`]), the three process loops ([`router`],
//! [`worker`], [`coordinator`]), and a child-process launcher
//! ([`local`]) used by the integration tests and the throughput
//! benchmarks.
//!
//! All framing honors [`rfid_stream::wire::DEFAULT_MAX_FRAME_LEN`]:
//! an oversized or malformed frame is a typed error, never an
//! attacker-controlled allocation.

pub mod cli;
pub mod coordinator;
pub mod local;
pub mod proto;
pub mod router;
pub mod scenario;
pub mod worker;

pub use local::{ClusterOutcome, LocalCluster};
pub use scenario::{build_engine, canonical_scenario, reference_events, Engine};
