//! Cluster telemetry gate: a real 2-worker launch must produce one
//! merged cluster-wide registry snapshot whose counter totals are
//! exact cluster sums — the worker partitions are disjoint, so the
//! merged `engine_readings_total` is the trace's object-reading count
//! (shelf/reader tags stay on the head), and `engine_epochs_total`
//! equals `workers x epochs` (every worker steps every epoch).

use rfid_cluster::{canonical_scenario, LocalCluster};

#[test]
fn two_worker_cluster_merges_one_registry_snapshot() {
    let (sc, _cfg) = canonical_scenario("tiny").expect("known scenario");
    let epochs = sc.trace.epoch_batches().len() as u64;
    let readings: u64 = sc
        .trace
        .epoch_batches()
        .iter()
        .map(|b| b.readings.len() as u64)
        .sum();
    assert!(epochs > 0 && readings > 0, "tiny must have work to count");

    let dir = std::env::temp_dir().join(format!("rfid-cluster-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics_path = dir.join("cluster-metrics.txt");
    LocalCluster::new("tiny", 2)
        .metrics_out(&metrics_path)
        .run()
        .unwrap_or_else(|e| panic!("2-worker cluster run failed: {e}"));

    let text = std::fs::read_to_string(&metrics_path).expect("router wrote the merged snapshot");
    std::fs::remove_dir_all(&dir).ok();

    let metric = |name: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("{name} missing from merged snapshot:\n{text}"))
            .trim()
            .parse()
            .expect("metric value parses")
    };
    // disjoint partitions: worker reading counts sum to the trace's
    // object readings — nonzero, and never more than the full trace
    let merged_readings = metric("engine_readings_total");
    assert!(
        merged_readings > 0 && merged_readings <= readings,
        "merged readings {merged_readings} out of range (trace total {readings})"
    );
    // every worker walks every epoch, so the merged count is N x epochs
    assert_eq!(metric("engine_epochs_total"), 2 * epochs);
    // stage histograms survive the wire merge: every epoch on every
    // worker records one infer sample
    assert_eq!(metric("engine_infer_us_count"), 2 * epochs);
    assert!(
        text.contains("engine_infer_us_bucket{le=\"+Inf\"}"),
        "histogram exposition missing from merged snapshot:\n{text}"
    );
}
