//! Child-process identity gate: a real router + N workers +
//! coordinator launch must reproduce the single-process engine's event
//! stream **bit-for-bit** — same digest, same event bytes — for every
//! worker count. Uses the fast `tiny` scenario; the golden-trace
//! scenarios are covered by the root `cluster_equivalence` suite.

use rfid_cluster::coordinator::read_events_file;
use rfid_cluster::{canonical_scenario, reference_events, LocalCluster};
use rfid_stream::digest::event_digest;

#[test]
fn cluster_processes_match_single_process_bit_for_bit() {
    let (sc, cfg) = canonical_scenario("tiny").expect("known scenario");
    let expected = reference_events(&sc, &cfg);
    assert!(!expected.is_empty(), "tiny must emit events");
    let expected_digest = event_digest(&expected);

    let dir = std::env::temp_dir().join(format!("rfid-cluster-identity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for n in [1usize, 2, 4] {
        let out = dir.join(format!("merged-{n}.bin"));
        let outcome = LocalCluster::new("tiny", n)
            .events_out(&out)
            .run()
            .unwrap_or_else(|e| panic!("{n}-worker cluster run failed: {e}"));
        assert_eq!(
            outcome.digest, expected_digest,
            "{n} workers: merged digest diverged from the single-process engine"
        );
        assert_eq!(outcome.events, expected.len(), "{n} workers: event count");

        // digest equality is the gate; the event file proves it is not
        // vacuous — every byte of every event matches
        let merged = read_events_file(&out).expect("read merged events");
        assert_eq!(merged.len(), expected.len());
        for (i, (a, b)) in merged.iter().zip(&expected).enumerate() {
            assert_eq!(a.epoch, b.epoch, "{n} workers: event {i} epoch");
            assert_eq!(a.tag, b.tag, "{n} workers: event {i} tag");
            assert_eq!(
                a.location.x.to_bits(),
                b.location.x.to_bits(),
                "{n} workers: event {i} x"
            );
            assert_eq!(a.location.y.to_bits(), b.location.y.to_bits());
            assert_eq!(a.location.z.to_bits(), b.location.z.to_bits());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
