//! The crash-recovery harness: drives an inference engine into a
//! [`DurableStore`] with periodic engine checkpoints, optionally dies
//! at a planned [`FaultPlan`] crash point, and recovers by loading the
//! newest usable checkpoint, truncating the segment log back to its
//! epoch, and re-running the remaining batches.
//!
//! The correctness claim rests on the engine's determinism contract:
//! re-processing batch `E+1` from a checkpoint taken at epoch `E`
//! regenerates *bit-identical* events, so recovery may freely discard
//! everything logged after the checkpoint and replay forward — the
//! final event stream (and its FNV-1a digest) matches an uninterrupted
//! run exactly.
//!
//! ## On-disk layout of a durable run directory
//!
//! ```text
//! <dir>/
//!   engine.ckpt         newest engine checkpoint (atomic rename)
//!   engine.prev.ckpt    the one before it (rotation fallback)
//!   log/                rfid_serve segment log
//!     MANIFEST
//!     segment-*.log
//!     archive/          (only with a retention window)
//! ```
//!
//! Checkpoint protocol: every `checkpoint_every` epochs the log is
//! fsynced *first* (so the checkpoint never claims an epoch the log
//! does not durably hold), then `engine.ckpt` is demoted to
//! `engine.prev.ckpt` and the new checkpoint written atomically. A
//! crash between demotion and write loses only the newest checkpoint —
//! recovery falls back to the previous one and replays further.

use crate::fault::FaultPlan;
use crate::golden::event_digest;
use rfid_core::checkpoint::{self, CheckpointError};
use rfid_core::engine::run_engine;
use rfid_core::{FilterConfig, InferenceEngine};
use rfid_model::sensor::ConeSensor;
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{DurableStore, LogError, Recovery, SegmentLog};
use rfid_sim::scenario::Scenario;
use rfid_sim::WarehouseLayout;
use rfid_stream::{Epoch, EpochBatch, LocationEvent};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// File name of the newest checkpoint in a run directory.
pub const CHECKPOINT_FILE: &str = "engine.ckpt";
/// File name of the demoted previous checkpoint.
pub const CHECKPOINT_PREV_FILE: &str = "engine.prev.ckpt";
/// Subdirectory holding the segment log.
pub const LOG_SUBDIR: &str = "log";

/// Anything a durable run or recovery can fail on.
#[derive(Debug)]
pub enum HarnessError {
    Io(std::io::Error),
    Log(LogError),
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Io(e) => write!(f, "i/o: {e}"),
            HarnessError::Log(e) => write!(f, "segment log: {e}"),
            HarnessError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<std::io::Error> for HarnessError {
    fn from(e: std::io::Error) -> Self {
        HarnessError::Io(e)
    }
}

impl From<LogError> for HarnessError {
    fn from(e: LogError) -> Self {
        HarnessError::Log(e)
    }
}

impl From<CheckpointError> for HarnessError {
    fn from(e: CheckpointError) -> Self {
        HarnessError::Checkpoint(e)
    }
}

/// Knobs of a durable run.
#[derive(Debug, Clone)]
pub struct DurableRunOpts {
    /// Checkpoint cadence in epochs (a checkpoint lands at every epoch
    /// that is a positive multiple of this).
    pub checkpoint_every: u64,
    /// Event-store configuration. Digest equality against an
    /// uninterrupted run requires unbounded retention (the default) —
    /// a retention window archives events out of the digest.
    pub store: StoreConfig,
    /// `true`: epoch-triggered fault plans `std::process::abort()` at
    /// the crash point (the child-harness behavior). `false`: the run
    /// returns with [`RunOutcome::completed`] = `false` instead, for
    /// in-process crash sweeps. Byte-triggered plans always abort —
    /// they fire inside the log layer itself.
    pub abort_on_fault: bool,
}

impl Default for DurableRunOpts {
    fn default() -> Self {
        DurableRunOpts {
            checkpoint_every: 25,
            store: StoreConfig::default(),
            abort_on_fault: false,
        }
    }
}

/// What a (possibly interrupted) durable run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// `false` if the run stopped at a simulated crash point.
    pub completed: bool,
    /// FNV-1a digest over the stored event stream — only meaningful
    /// (comparable to [`reference_digest`]) when `completed`.
    pub digest: u64,
    /// Events in the store when the run stopped.
    pub events: usize,
    /// Checkpoints written during this run.
    pub checkpoints: usize,
    /// Wall-clock of the batch-processing loop.
    pub drive_elapsed: Duration,
}

/// [`RunOutcome`] plus what recovery had to do to get there.
#[derive(Debug, Clone)]
pub struct ResumeOutcome {
    pub run: RunOutcome,
    /// Epoch of the checkpoint recovery resumed from (`None`: no
    /// usable checkpoint — deterministic re-run from the beginning).
    pub resumed_from: Option<u64>,
    /// Last epoch the log durably held at recovery time.
    pub last_durable_epoch: Option<u64>,
    /// What the segment log had to repair on open (torn tails,
    /// adopted segments, rebuilt manifest).
    pub log_recovery: Recovery,
    /// Events rebuilt into the store by log replay.
    pub replayed_events: usize,
    /// Wall-clock of recovery itself: log open + truncation + replay
    /// + checkpoint load (excludes the resumed batch loop).
    pub recover_elapsed: Duration,
}

type Engine = InferenceEngine<WarehouseLayout, ConeSensor>;

/// The three golden-trace scenarios (plus `"tiny"`, a fast variant for
/// harness self-tests), with the same pinned configurations the
/// golden-trace digests are committed under. The single definition
/// lives in [`rfid_cluster::scenario`] so the recovery harness and the
/// cluster binaries can never drift apart.
pub use rfid_cluster::scenario::canonical_scenario;

use rfid_cluster::scenario::build_engine;

/// Digest of the event stream an *uninterrupted* run produces — the
/// value every recovered run must reproduce exactly.
pub fn reference_digest(sc: &Scenario, cfg: &FilterConfig) -> u64 {
    let mut engine = build_engine(sc, cfg);
    event_digest(&run_engine(&mut engine, &sc.trace.epoch_batches()))
}

/// Digest over a store's retained events in sequence order.
pub fn store_digest(store: &EventStore) -> u64 {
    let events: Vec<LocationEvent> = store.events().map(|s| s.event).collect();
    event_digest(&events)
}

fn log_dir(dir: &Path) -> PathBuf {
    dir.join(LOG_SUBDIR)
}

/// Runs a scenario from scratch into `dir` (which must not already
/// hold a run), honoring `plan` if given.
pub fn run_fresh(
    sc: &Scenario,
    cfg: &FilterConfig,
    dir: &Path,
    opts: &DurableRunOpts,
    plan: Option<FaultPlan>,
) -> Result<RunOutcome, HarnessError> {
    std::fs::create_dir_all(dir)?;
    let mut durable = DurableStore::open(&log_dir(dir), opts.store)?;
    let mut engine = build_engine(sc, cfg);
    drive(&mut engine, sc, None, &mut durable, dir, opts, plan)
}

/// Recovers a crashed run in `dir` and drives it onward (to completion
/// unless `plan` crashes it again) — the restart half of a
/// kill-and-restart cycle. Also valid on a directory holding a
/// *finished* run: recovery replays it and the batch loop is a no-op.
pub fn resume(
    sc: &Scenario,
    cfg: &FilterConfig,
    dir: &Path,
    opts: &DurableRunOpts,
    plan: Option<FaultPlan>,
) -> Result<ResumeOutcome, HarnessError> {
    let t0 = Instant::now();

    // 1. Open the log (this alone repairs torn tails and rebuilds a
    //    missing manifest) and learn the last durable epoch.
    let mut log = SegmentLog::open(&log_dir(dir), opts.store.segment_epochs)?;
    let last_durable = log.last_completed();
    let log_recovery = log.recovery();

    // 2. Pick the newest checkpoint whose epoch the log durably
    //    covers. An unreadable or torn candidate is skipped, not fatal
    //    — that is what the rotation fallback is for.
    let mut pick: Option<(u64, PathBuf)> = None;
    for name in [CHECKPOINT_FILE, CHECKPOINT_PREV_FILE] {
        let path = dir.join(name);
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        let Ok(epoch) = checkpoint::peek_epoch(&bytes) else {
            continue;
        };
        let usable = last_durable.is_some_and(|l| epoch.0 <= l);
        if usable && pick.as_ref().is_none_or(|(e, _)| epoch.0 > *e) {
            pick = Some((epoch.0, path));
        }
    }

    // 3. Reconcile the log with the resume point: everything after the
    //    checkpoint epoch will be regenerated bit-identically, so drop
    //    it. With no usable checkpoint the whole log is regenerated —
    //    drop it wholesale and re-run from the first batch.
    let resume_after = match &pick {
        Some((epoch, _)) => {
            log.truncate_after_epoch(Epoch(*epoch))?;
            drop(log);
            Some(*epoch)
        }
        None => {
            drop(log);
            std::fs::remove_dir_all(log_dir(dir))?;
            None
        }
    };

    // 4. Rebuild the store by replay and the engine from the
    //    checkpoint.
    let mut durable = DurableStore::open(&log_dir(dir), opts.store)?;
    let replayed_events = durable.store().events().count();
    let mut engine = build_engine(sc, cfg);
    if let Some((epoch, path)) = &pick {
        let restored = engine.load_checkpoint(path)?;
        debug_assert_eq!(restored.0, *epoch);
    }
    let recover_elapsed = t0.elapsed();

    // 5. Drive the remaining batches.
    let run = drive(&mut engine, sc, resume_after, &mut durable, dir, opts, plan)?;
    Ok(ResumeOutcome {
        run,
        resumed_from: resume_after,
        last_durable_epoch: last_durable,
        log_recovery,
        replayed_events,
        recover_elapsed,
    })
}

/// The batch loop shared by fresh and resumed runs. Mirrors
/// [`run_engine`] exactly — per-batch processing in order, one final
/// flush at the last epoch — so the durable event stream is
/// bit-identical to the in-memory reference.
fn drive(
    engine: &mut Engine,
    sc: &Scenario,
    resume_after: Option<u64>,
    durable: &mut DurableStore,
    dir: &Path,
    opts: &DurableRunOpts,
    plan: Option<FaultPlan>,
) -> Result<RunOutcome, HarnessError> {
    let t0 = Instant::now();
    if let Some(fault) = plan.as_ref().and_then(FaultPlan::write_fault) {
        durable.log_mut().arm_fault(fault);
    }

    let batches: Vec<EpochBatch> = sc.trace.epoch_batches();
    let mut buf = Vec::new();
    let mut checkpoints = 0usize;
    let mut crashed = false;
    for batch in &batches {
        if resume_after.is_some_and(|e| batch.epoch.0 <= e) {
            continue;
        }
        buf.clear();
        engine.process_batch_into(batch, &mut buf);
        for event in &buf {
            durable.push(event)?;
        }
        durable.complete_epoch(batch.epoch)?;

        if matches!(plan, Some(FaultPlan::KillAtEpoch(e)) if e == batch.epoch.0) {
            durable.sync()?;
            if opts.abort_on_fault {
                std::process::abort();
            }
            crashed = true;
            break;
        }

        if batch.epoch.0 > 0 && batch.epoch.0 % opts.checkpoint_every == 0 {
            // the log must durably cover the checkpoint's epoch before
            // the checkpoint exists
            durable.sync()?;
            let ckpt = dir.join(CHECKPOINT_FILE);
            let prev = dir.join(CHECKPOINT_PREV_FILE);
            if ckpt.exists() {
                std::fs::rename(&ckpt, &prev)?;
            }
            if matches!(plan, Some(FaultPlan::CheckpointRotationCrash(e)) if e == batch.epoch.0) {
                if opts.abort_on_fault {
                    std::process::abort();
                }
                crashed = true;
                break;
            }
            engine.save_checkpoint(&ckpt, batch.epoch)?;
            checkpoints += 1;
        }
    }

    if !crashed {
        let last = batches.last().map(|b| b.epoch).unwrap_or(Epoch(0));
        buf.clear();
        engine.finalize_into(last, &mut buf);
        for event in &buf {
            durable.push(event)?;
        }
        durable.finish()?;
        durable.sync()?;
    }

    Ok(RunOutcome {
        completed: !crashed,
        digest: store_digest(durable.store()),
        events: durable.store().events().count(),
        checkpoints,
        drive_elapsed: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rfid-recovery-{name}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny() -> (Scenario, FilterConfig) {
        canonical_scenario("tiny").unwrap()
    }

    #[test]
    fn uninterrupted_durable_run_matches_the_reference_digest() {
        let (sc, cfg) = tiny();
        let dir = temp_dir("clean");
        let opts = DurableRunOpts {
            checkpoint_every: 20,
            ..DurableRunOpts::default()
        };
        let out = run_fresh(&sc, &cfg, &dir, &opts, None).unwrap();
        assert!(out.completed);
        assert!(out.checkpoints > 0, "cadence must have fired");
        assert_eq!(out.digest, reference_digest(&sc, &cfg));

        // resuming a finished run truncates back to the newest
        // checkpoint and regenerates the tail — same digest
        let resumed = resume(&sc, &cfg, &dir, &opts, None).unwrap();
        assert!(resumed.run.completed);
        assert_eq!(resumed.run.digest, out.digest);
        assert!(resumed.resumed_from.is_some());
        assert!(resumed.replayed_events <= out.events);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_and_resume_reproduces_the_digest() {
        let (sc, cfg) = tiny();
        let golden = reference_digest(&sc, &cfg);
        let opts = DurableRunOpts {
            checkpoint_every: 15,
            ..DurableRunOpts::default()
        };
        // crash after a checkpoint exists and mid-way between two
        let dir = temp_dir("kill");
        let out = run_fresh(&sc, &cfg, &dir, &opts, Some(FaultPlan::KillAtEpoch(38))).unwrap();
        assert!(!out.completed);
        let resumed = resume(&sc, &cfg, &dir, &opts, None).unwrap();
        assert!(resumed.run.completed);
        assert_eq!(resumed.resumed_from, Some(30), "newest checkpoint <= 38");
        assert_eq!(resumed.last_durable_epoch, Some(38));
        assert_eq!(resumed.run.digest, golden);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_before_any_checkpoint_recovers_from_scratch() {
        let (sc, cfg) = tiny();
        let golden = reference_digest(&sc, &cfg);
        let opts = DurableRunOpts {
            checkpoint_every: 1000, // never fires
            ..DurableRunOpts::default()
        };
        let dir = temp_dir("scratch");
        let out = run_fresh(&sc, &cfg, &dir, &opts, Some(FaultPlan::KillAtEpoch(7))).unwrap();
        assert!(!out.completed);
        let resumed = resume(&sc, &cfg, &dir, &opts, None).unwrap();
        assert!(resumed.run.completed);
        assert_eq!(resumed.resumed_from, None);
        assert_eq!(resumed.run.digest, golden);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotation_crash_falls_back_to_the_previous_checkpoint() {
        let (sc, cfg) = tiny();
        let golden = reference_digest(&sc, &cfg);
        let opts = DurableRunOpts {
            checkpoint_every: 10,
            ..DurableRunOpts::default()
        };
        let dir = temp_dir("ckpt");
        // dies at epoch 30's checkpoint: engine.ckpt (epoch 20) was
        // demoted to engine.prev.ckpt, the new one never written
        let out = run_fresh(
            &sc,
            &cfg,
            &dir,
            &opts,
            Some(FaultPlan::CheckpointRotationCrash(30)),
        )
        .unwrap();
        assert!(!out.completed);
        assert!(!dir.join(CHECKPOINT_FILE).exists());
        assert!(dir.join(CHECKPOINT_PREV_FILE).exists());
        let resumed = resume(&sc, &cfg, &dir, &opts, None).unwrap();
        assert!(resumed.run.completed);
        assert_eq!(resumed.resumed_from, Some(20), "fallback checkpoint");
        assert_eq!(resumed.run.digest, golden);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chained_crashes_still_converge_to_the_reference() {
        let (sc, cfg) = tiny();
        let golden = reference_digest(&sc, &cfg);
        let opts = DurableRunOpts {
            checkpoint_every: 12,
            ..DurableRunOpts::default()
        };
        let dir = temp_dir("chain");
        let out = run_fresh(&sc, &cfg, &dir, &opts, Some(FaultPlan::KillAtEpoch(20))).unwrap();
        assert!(!out.completed);
        // the restart crashes again, later (the tiny trace ends at 40)
        let mid = resume(&sc, &cfg, &dir, &opts, Some(FaultPlan::KillAtEpoch(39))).unwrap();
        assert!(!mid.run.completed);
        assert_eq!(mid.resumed_from, Some(12));
        let fin = resume(&sc, &cfg, &dir, &opts, None).unwrap();
        assert!(fin.run.completed);
        assert_eq!(fin.resumed_from, Some(36), "checkpoints from both lives");
        assert_eq!(fin.run.digest, golden);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
