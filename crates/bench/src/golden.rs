//! Golden-trace digests: a compact, bit-exact fingerprint of an event
//! stream, committed under `tests/golden/` and checked by the root
//! `golden_trace` suite. Any unintended change to the inference math —
//! a constant, an RNG draw, a merge order — flips the digest and fails
//! tier-1 instead of passing silently.
//!
//! A digest file carries the FNV-1a hash of *every* event's full bit
//! pattern plus the first few events spelled out, so a mismatch shows
//! where the stream diverged, not just that it did. Regenerate with
//! the bless path:
//!
//! ```text
//! RFID_GOLDEN_BLESS=1 cargo test --test golden_trace
//! ```

use rfid_stream::LocationEvent;
use std::fmt::Write as _;

/// Events spelled out at the head of a digest file.
pub const DIGEST_HEAD_EVENTS: usize = 8;

/// Re-exported from `rfid_stream::digest`, where the cluster
/// coordinator shares the same definition (PR 9).
pub use rfid_stream::digest::event_digest;

/// Renders the committed digest-file content for one scenario:
/// header, whole-stream hash, and the first [`DIGEST_HEAD_EVENTS`]
/// events with their float payloads as raw bits (display rounding must
/// never mask a drift).
pub fn render_digest(scenario: &str, config: &str, events: &[LocationEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# golden event-stream digest — regenerate with:\n\
         #   RFID_GOLDEN_BLESS=1 cargo test --test golden_trace"
    );
    let _ = writeln!(out, "scenario: {scenario}");
    let _ = writeln!(out, "config: {config}");
    let _ = writeln!(out, "events: {}", events.len());
    let _ = writeln!(out, "hash: {:#018x}", event_digest(events));
    for (i, e) in events.iter().take(DIGEST_HEAD_EVENTS).enumerate() {
        let _ = writeln!(
            out,
            "event {i}: epoch={} tag={} x={:#018x} y={:#018x} z={:#018x}",
            e.epoch.0,
            e.tag.0,
            e.location.x.to_bits(),
            e.location.y.to_bits(),
            e.location.z.to_bits(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Point3;
    use rfid_stream::{Epoch, TagId};

    fn ev(epoch: u64, tag: u64, y: f64) -> LocationEvent {
        LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(2.0, y, 0.0))
    }

    // bit-sensitivity of the hash itself is covered where it lives now
    // (rfid_stream::digest); here only the rendered file format

    #[test]
    fn render_contains_hash_and_head() {
        let events = vec![ev(1, 1, 3.0); 12];
        let s = render_digest("test_scenario", "cfg", &events);
        assert!(s.contains("scenario: test_scenario"));
        assert!(s.contains("events: 12"));
        assert!(s.contains("hash: 0x"));
        assert_eq!(s.matches("event ").count(), DIGEST_HEAD_EVENTS);
    }
}
