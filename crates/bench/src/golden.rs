//! Golden-trace digests: a compact, bit-exact fingerprint of an event
//! stream, committed under `tests/golden/` and checked by the root
//! `golden_trace` suite. Any unintended change to the inference math —
//! a constant, an RNG draw, a merge order — flips the digest and fails
//! tier-1 instead of passing silently.
//!
//! A digest file carries the FNV-1a hash of *every* event's full bit
//! pattern plus the first few events spelled out, so a mismatch shows
//! where the stream diverged, not just that it did. Regenerate with
//! the bless path:
//!
//! ```text
//! RFID_GOLDEN_BLESS=1 cargo test --test golden_trace
//! ```

use rfid_stream::LocationEvent;
use std::fmt::Write as _;

/// Events spelled out at the head of a digest file.
pub const DIGEST_HEAD_EVENTS: usize = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash over the full bit pattern of every event: epoch, tag,
/// location bits, and (when present) the statistics bits. Bit-exact —
/// two streams hash equal iff a bit-level comparison would pass.
pub fn event_digest(events: &[LocationEvent]) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, &(events.len() as u64).to_le_bytes());
    for e in events {
        h = fnv1a(h, &e.epoch.0.to_le_bytes());
        h = fnv1a(h, &e.tag.0.to_le_bytes());
        for v in [e.location.x, e.location.y, e.location.z] {
            h = fnv1a(h, &v.to_bits().to_le_bytes());
        }
        match e.stats {
            None => h = fnv1a(h, &[0u8]),
            Some(s) => {
                h = fnv1a(h, &[1u8]);
                h = fnv1a(h, &s.support.to_bits().to_le_bytes());
                for v in s.var {
                    h = fnv1a(h, &v.to_bits().to_le_bytes());
                }
            }
        }
    }
    h
}

/// Renders the committed digest-file content for one scenario:
/// header, whole-stream hash, and the first [`DIGEST_HEAD_EVENTS`]
/// events with their float payloads as raw bits (display rounding must
/// never mask a drift).
pub fn render_digest(scenario: &str, config: &str, events: &[LocationEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# golden event-stream digest — regenerate with:\n\
         #   RFID_GOLDEN_BLESS=1 cargo test --test golden_trace"
    );
    let _ = writeln!(out, "scenario: {scenario}");
    let _ = writeln!(out, "config: {config}");
    let _ = writeln!(out, "events: {}", events.len());
    let _ = writeln!(out, "hash: {:#018x}", event_digest(events));
    for (i, e) in events.iter().take(DIGEST_HEAD_EVENTS).enumerate() {
        let _ = writeln!(
            out,
            "event {i}: epoch={} tag={} x={:#018x} y={:#018x} z={:#018x}",
            e.epoch.0,
            e.tag.0,
            e.location.x.to_bits(),
            e.location.y.to_bits(),
            e.location.z.to_bits(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Point3;
    use rfid_stream::{Epoch, EventStats, TagId};

    fn ev(epoch: u64, tag: u64, y: f64) -> LocationEvent {
        LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(2.0, y, 0.0))
    }

    #[test]
    fn digest_is_bit_sensitive() {
        let a = vec![ev(1, 1, 3.0), ev(2, 2, 4.0)];
        let base = event_digest(&a);
        // any single-field change moves the hash
        let mut b = a.clone();
        b[1].location.y = f64::from_bits(b[1].location.y.to_bits() ^ 1);
        assert_ne!(base, event_digest(&b), "last-ulp drift must be caught");
        let mut c = a.clone();
        c[0].epoch = Epoch(7);
        assert_ne!(base, event_digest(&c));
        let mut d = a.clone();
        d[0].stats = Some(EventStats::default());
        assert_ne!(base, event_digest(&d));
        // order matters: the stream is an ordered contract
        let e = vec![a[1], a[0]];
        assert_ne!(base, event_digest(&e));
        // and equality holds for equal streams
        assert_eq!(base, event_digest(&a.clone()));
    }

    #[test]
    fn render_contains_hash_and_head() {
        let events = vec![ev(1, 1, 3.0); 12];
        let s = render_digest("test_scenario", "cfg", &events);
        assert!(s.contains("scenario: test_scenario"));
        assert!(s.contains("events: 12"));
        assert!(s.contains("hash: 0x"));
        assert_eq!(s.matches("event ").count(), DIGEST_HEAD_EVENTS);
    }
}
