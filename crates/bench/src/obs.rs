//! Registry-vs-legacy agreement and JSON embedding of metric
//! snapshots.
//!
//! The observability layer mirrors [`rfid_core::EngineStats`] onto the
//! process-global `rfid_obs` registry. The legacy struct counters are
//! still what every experiment table prints, so this module is the
//! proof that the two never diverge: [`engine_delta_agrees`] compares
//! a per-run registry *diff* against the run's legacy stats field by
//! field and demands exact `u64` equality — not approximate, because
//! the mirror records the same integers the struct accumulates.
//!
//! [`metrics_json`] serializes a snapshot as a JSON object the
//! in-tree [`crate::json::Json`] parser reads back, so the committed
//! `BENCH_*.json` trajectories can embed the registry dump of the run
//! that produced them and `experiments -- report` can render it.

use rfid_core::EngineStats;
use rfid_obs::{Snapshot, Value};

/// Checks that a registry diff taken around exactly one engine run
/// agrees with that run's legacy [`EngineStats`]: every mirrored
/// counter delta equals its struct field, and each stage histogram's
/// `_sum` equals the struct's total stage micros (the mirror records
/// the exact per-epoch `u64` deltas, so the sums reproduce the totals
/// with no rounding). Returns every discrepancy, not just the first.
pub fn engine_delta_agrees(delta: &Snapshot, stats: &EngineStats) -> Result<(), String> {
    let mut errs: Vec<String> = Vec::new();
    let mut counter = |name: &str, legacy: u64| {
        let reg = delta.counter(name);
        if reg != legacy {
            errs.push(format!("{name}: registry {reg} != legacy {legacy}"));
        }
    };
    counter("engine_epochs_total", stats.epochs);
    counter("engine_readings_total", stats.readings);
    counter("engine_object_updates_total", stats.object_updates);
    counter("engine_events_total", stats.events_emitted);
    counter("engine_object_resamples_total", stats.object_resamples);
    counter("engine_reader_resamples_total", stats.reader_resamples);
    counter("engine_compressions_total", stats.compressions);
    counter("engine_decompressions_total", stats.decompressions);
    for (name, legacy) in [
        ("engine_ingest_us", stats.ingest_us),
        ("engine_infer_us", stats.infer_us),
        ("engine_emit_us", stats.emit_us),
    ] {
        let sum = delta.histogram(name).map(|h| h.sum).unwrap_or(0);
        if sum != legacy {
            errs.push(format!("{name}_sum: registry {sum} != legacy {legacy}"));
        }
        let count = delta.histogram(name).map(|h| h.count).unwrap_or(0);
        if count != stats.epochs {
            errs.push(format!(
                "{name}_count: registry {count} != legacy epochs {}",
                stats.epochs
            ));
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs.join("; "))
    }
}

/// Serializes a snapshot as a JSON object: counters and gauges as
/// integer members, each histogram as `_count`/`_sum`/`_p50`/`_p99`
/// members (the quantiles are bucket upper bounds — see
/// `rfid_obs::HistogramSnapshot::quantile`). `indent` prefixes every
/// member line so the object nests at any depth of a hand-built
/// document. The output parses with [`crate::json::Json`].
pub fn metrics_json(snap: &Snapshot, indent: &str) -> String {
    let mut members: Vec<String> = Vec::new();
    for (name, value) in snap.entries() {
        match value {
            Value::Counter(v) | Value::Gauge(v) => members.push(format!("\"{name}\": {v}")),
            Value::Histogram(h) => {
                members.push(format!("\"{name}_count\": {}", h.count));
                members.push(format!("\"{name}_sum\": {}", h.sum));
                members.push(format!("\"{name}_p50\": {}", h.quantile(0.50)));
                members.push(format!("\"{name}_p99\": {}", h.quantile(0.99)));
            }
        }
    }
    if members.is_empty() {
        return "{}".to_string();
    }
    let mut s = String::from("{\n");
    for (i, m) in members.iter().enumerate() {
        s.push_str(indent);
        s.push_str("  ");
        s.push_str(m);
        s.push_str(if i + 1 == members.len() { "\n" } else { ",\n" });
    }
    s.push_str(indent);
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use rfid_obs::Registry;

    #[test]
    fn metrics_json_round_trips_through_the_parser() {
        let r = Registry::new();
        r.counter("a_total").add(7);
        r.gauge("b_high_water").set(3);
        let h = r.histogram("c_us");
        h.record(10);
        h.record(1000);
        let text = metrics_json(&r.snapshot(), "  ");
        let doc = Json::parse(&text).expect("valid json");
        assert_eq!(doc.get("a_total").unwrap().as_f64(), Some(7.0));
        assert_eq!(doc.get("b_high_water").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("c_us_count").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("c_us_sum").unwrap().as_f64(), Some(1010.0));
        assert!(doc.get("c_us_p50").unwrap().as_f64().unwrap() >= 10.0);
        assert_eq!(metrics_json(&Registry::new().snapshot(), ""), "{}");
    }

    #[test]
    fn engine_agreement_accepts_an_exact_mirror_and_names_every_drift() {
        // build a registry diff the way the engine mirror would: stage
        // sums recorded per epoch, counters added once
        let r = Registry::new();
        r.counter("engine_epochs_total").add(2);
        r.counter("engine_readings_total").add(30);
        let ingest = r.histogram("engine_ingest_us");
        let infer = r.histogram("engine_infer_us");
        let emit = r.histogram("engine_emit_us");
        for (a, b, c) in [(5, 40, 1), (7, 60, 2)] {
            ingest.record(a);
            infer.record(b);
            emit.record(c);
        }
        let stats = EngineStats {
            epochs: 2,
            readings: 30,
            ingest_us: 12,
            infer_us: 100,
            emit_us: 3,
            ..EngineStats::default()
        };
        engine_delta_agrees(&r.snapshot(), &stats).expect("exact mirror agrees");

        let drifted = EngineStats {
            infer_us: 99,
            readings: 31,
            ..stats
        };
        let err = engine_delta_agrees(&r.snapshot(), &drifted).unwrap_err();
        assert!(err.contains("engine_infer_us_sum"), "{err}");
        assert!(err.contains("engine_readings_total"), "{err}");
    }
}
