//! Inference-error metrics: continuous location error ([`ErrorStats`])
//! and event-level accuracy ([`EventScore`] and friends — the paper's
//! real claim is inference *quality*, so the repo scores precision,
//! recall, F1, change-detection delay, and shelf containment, not just
//! mean feet of error).

use rfid_sim::scenario::Scenario;
use rfid_sim::{GroundTruth, WarehouseLayout};
use rfid_stream::{Epoch, LocationEvent, TagId};
use std::collections::BTreeSet;

/// Error summary of an event stream against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean |x_est - x_true|.
    pub mean_x: f64,
    /// Mean |y_est - y_true|.
    pub mean_y: f64,
    /// Mean Euclidean error in the XY plane — the paper's headline
    /// metric.
    pub mean_xy: f64,
    /// Worst single-event XY error.
    pub max_xy: f64,
    /// Events scored.
    pub n: usize,
    /// Events that could not be scored (no ground truth for the tag).
    pub unscored: usize,
}

impl ErrorStats {
    /// Scores events against ground truth at each event's epoch.
    pub fn score(events: &[LocationEvent], truth: &GroundTruth) -> Self {
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sxy = 0.0;
        let mut max_xy = 0.0f64;
        let mut n = 0usize;
        let mut unscored = 0usize;
        for e in events {
            match truth.object_at(e.tag, e.epoch) {
                Some(t) => {
                    let dx = (e.location.x - t.x).abs();
                    let dy = (e.location.y - t.y).abs();
                    let dxy = e.location.dist_xy(&t);
                    sx += dx;
                    sy += dy;
                    sxy += dxy;
                    max_xy = max_xy.max(dxy);
                    n += 1;
                }
                None => unscored += 1,
            }
        }
        if n == 0 {
            return Self {
                mean_x: f64::NAN,
                mean_y: f64::NAN,
                mean_xy: f64::NAN,
                max_xy: f64::NAN,
                n: 0,
                unscored,
            };
        }
        Self {
            mean_x: sx / n as f64,
            mean_y: sy / n as f64,
            mean_xy: sxy / n as f64,
            max_xy,
            n,
            unscored,
        }
    }

    /// Relative error reduction of `self` vs a `baseline` (the paper's
    /// "49% error reduction over SMURF"), in percent.
    ///
    /// A zero-error baseline admits no relative reduction, so the
    /// ratio's division is never performed there; instead the defined
    /// conventions keep the value finite:
    /// * `0 / 0` — both systems are perfect: **0.0** (parity, no
    ///   reduction to claim);
    /// * `x / 0` with `x > 0` — the baseline is perfect and we are
    ///   not: **-100.0** (the symmetric-form cap
    ///   `100·(baseline−ours)/max(baseline, ours)`, i.e. "100% worse",
    ///   rather than the `-inf` the naive formula produces).
    pub fn reduction_vs(&self, baseline: &ErrorStats) -> f64 {
        if baseline.mean_xy == 0.0 {
            return if self.mean_xy == 0.0 { 0.0 } else { -100.0 };
        }
        100.0 * (1.0 - self.mean_xy / baseline.mean_xy)
    }
}

// ---------------------------------------------------------------------
// Event-level accuracy
// ---------------------------------------------------------------------

/// Knobs of the event-level scorer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventScoreConfig {
    /// XY radius (feet) within which an event counts as correctly
    /// locating its object. The default of 1.0 ft sits between the
    /// engine's typical error (~0.2–0.5 ft) and the uniform bound's
    /// (~1.5–2 ft), so it separates the systems the paper compares.
    pub match_radius_xy: f64,
}

impl Default for EventScoreConfig {
    fn default() -> Self {
        Self {
            match_radius_xy: 1.0,
        }
    }
}

/// Confusion counts of one event stream against ground truth. Every
/// emitted event falls into exactly one of the first three buckets;
/// `missed_tags` counts ground-truth objects no event ever matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Events within the match radius of the object's true location at
    /// the event's epoch (true positives).
    pub matched: usize,
    /// Events whose object exists at the event's epoch but whose
    /// location is off by more than the match radius.
    pub mislocated: usize,
    /// Events for objects the ground truth does not contain at the
    /// event's epoch — never existed, not yet arrived, or departed.
    pub phantom: usize,
    /// Ground-truth objects with no matched event anywhere (false
    /// negatives at the object level).
    pub missed_tags: usize,
}

/// Event-level precision/recall/F1 of a stream against ground truth.
///
/// Definitions (all per-epoch: an event is judged against the truth at
/// *its own* epoch, so stale reports of moved or departed objects count
/// against the system):
/// * **precision** = matched events / all events (1.0 for an empty
///   stream — no claims, no false claims);
/// * **recall** = objects with ≥ 1 matched event / objects in truth
///   (1.0 when the truth is empty);
/// * **f1** = harmonic mean (0.0 when precision + recall = 0).
///
/// Scoring is order-independent: permuting events (within an epoch or
/// globally) cannot change any count. Adding an unmatched event can
/// only lower precision; adding events never lowers recall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventScore {
    pub confusion: Confusion,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    /// Events scored (all of them — unlike [`ErrorStats`], no event is
    /// ever "unscorable" here; unknown tags are phantoms).
    pub events: usize,
    /// Objects in the ground truth (the recall denominator).
    pub truth_tags: usize,
}

impl EventScore {
    /// Scores an event stream against ground truth.
    pub fn score(events: &[LocationEvent], truth: &GroundTruth, cfg: &EventScoreConfig) -> Self {
        let mut confusion = Confusion::default();
        let mut matched_tags: BTreeSet<TagId> = BTreeSet::new();
        for e in events {
            match truth.object_at(e.tag, e.epoch) {
                Some(t) if e.location.dist_xy(&t) <= cfg.match_radius_xy => {
                    confusion.matched += 1;
                    matched_tags.insert(e.tag);
                }
                Some(_) => confusion.mislocated += 1,
                None => confusion.phantom += 1,
            }
        }
        let truth_tags = truth.num_objects();
        confusion.missed_tags = truth_tags - matched_tags.len();
        let precision = if events.is_empty() {
            1.0
        } else {
            confusion.matched as f64 / events.len() as f64
        };
        let recall = if truth_tags == 0 {
            1.0
        } else {
            matched_tags.len() as f64 / truth_tags as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            confusion,
            precision,
            recall,
            f1,
            events: events.len(),
            truth_tags,
        }
    }
}

/// How quickly relocations ([`GroundTruth::relocations`]) show up in
/// the event stream. A relocation is *detected* by the first event for
/// its tag at or after the move whose location matches the truth at
/// that event's epoch (within the match radius) — i.e. the system is
/// provably reporting the post-move state, not the stale one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangeDetection {
    /// Relocations in the ground truth.
    pub moves_total: usize,
    /// Relocations with a detecting event.
    pub moves_detected: usize,
    /// Mean epochs from relocation to its detecting event (0.0 when
    /// nothing was detected).
    pub mean_delay_epochs: f64,
    /// Worst detection delay (0 when nothing was detected).
    pub max_delay_epochs: u64,
}

impl ChangeDetection {
    /// Measures detection delay of every ground-truth relocation.
    pub fn score(events: &[LocationEvent], truth: &GroundTruth, cfg: &EventScoreConfig) -> Self {
        // events sorted by (tag, epoch) for an in-order scan per move
        let mut sorted: Vec<&LocationEvent> = events.iter().collect();
        sorted.sort_by_key(|e| (e.tag, e.epoch));
        let mut moves_total = 0;
        let mut moves_detected = 0;
        let mut delay_sum = 0u64;
        let mut max_delay = 0u64;
        for (tag, move_epoch, _) in truth.relocations() {
            moves_total += 1;
            // the move is superseded once the tag relocates again (or
            // departs): later detections belong to the later change
            let until: Epoch = truth
                .object_changes(tag)
                .map(|(e, _)| e)
                .find(|e| *e > move_epoch)
                .unwrap_or(Epoch(u64::MAX));
            // jump to this tag's post-move slice and scan only until
            // the move is superseded — O(log n) per relocation instead
            // of a full pass over the event vector
            let start = sorted.partition_point(|e| (e.tag, e.epoch) < (tag, move_epoch));
            let hit = sorted[start..]
                .iter()
                .take_while(|e| e.tag == tag && e.epoch < until)
                .find(|e| {
                    truth
                        .object_at(tag, e.epoch)
                        .is_some_and(|t| e.location.dist_xy(&t) <= cfg.match_radius_xy)
                });
            if let Some(e) = hit {
                moves_detected += 1;
                let d = e.epoch.since(move_epoch);
                delay_sum += d;
                max_delay = max_delay.max(d);
            }
        }
        let mean_delay_epochs = if moves_detected == 0 {
            0.0
        } else {
            delay_sum as f64 / moves_detected as f64
        };
        Self {
            moves_total,
            moves_detected,
            mean_delay_epochs,
            max_delay_epochs: max_delay,
        }
    }
}

/// Fraction of events (whose object exists at the event's epoch) that
/// place the object on the *correct shelf* — the containment question
/// ("which shelf is it on") behind the paper's compression groups. An
/// event is contained when the shelf whose y-range holds the true
/// location also holds the estimate (x within the shelf's face band).
/// Returns `f64::NAN` when no event is attributable to a shelf.
pub fn containment_accuracy(
    events: &[LocationEvent],
    truth: &GroundTruth,
    layout: &WarehouseLayout,
) -> f64 {
    let shelf_of = |y: f64, x: f64| -> Option<usize> {
        layout.shelves().iter().position(|s| {
            y >= s.bbox.min.y - 1e-9
                && y <= s.bbox.max.y + 1e-9
                && x >= s.bbox.min.x - 0.5
                && x <= s.bbox.max.x + 0.5
        })
    };
    let mut n = 0usize;
    let mut correct = 0usize;
    for e in events {
        let Some(t) = truth.object_at(e.tag, e.epoch) else {
            continue;
        };
        let Some(true_shelf) = shelf_of(t.y, t.x) else {
            continue;
        };
        n += 1;
        if shelf_of(e.location.y, e.location.x) == Some(true_shelf) {
            correct += 1;
        }
    }
    if n == 0 {
        return f64::NAN;
    }
    correct as f64 / n as f64
}

/// The full per-scenario accuracy summary: event-level scores,
/// continuous location error, change-detection delay, and shelf
/// containment — one row of the accuracy matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioScore {
    pub events: EventScore,
    pub error: ErrorStats,
    pub change: ChangeDetection,
    /// Correct-shelf fraction (`NaN` when nothing was attributable).
    pub containment: f64,
}

/// Scores one system's event stream against a scenario.
pub fn score_scenario(
    events: &[LocationEvent],
    sc: &Scenario,
    cfg: &EventScoreConfig,
) -> ScenarioScore {
    ScenarioScore {
        events: EventScore::score(events, &sc.trace.truth, cfg),
        error: ErrorStats::score(events, &sc.trace.truth),
        change: ChangeDetection::score(events, &sc.trace.truth, cfg),
        containment: containment_accuracy(events, &sc.trace.truth, &sc.layout),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Point3;
    use rfid_stream::{Epoch, TagId};

    fn truth_with(tag: u64, loc: Point3) -> GroundTruth {
        let mut g = GroundTruth::new();
        g.set_object(TagId(tag), Epoch(0), loc);
        g
    }

    #[test]
    fn scores_simple_offsets() {
        let g = truth_with(1, Point3::new(0.0, 0.0, 0.0));
        let events = vec![LocationEvent::new(
            Epoch(5),
            TagId(1),
            Point3::new(3.0, 4.0, 0.0),
        )];
        let s = ErrorStats::score(&events, &g);
        assert_eq!(s.n, 1);
        assert!((s.mean_x - 3.0).abs() < 1e-12);
        assert!((s.mean_y - 4.0).abs() < 1e-12);
        assert!((s.mean_xy - 5.0).abs() < 1e-12);
        assert!((s.max_xy - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_tags_counted_unscored() {
        let g = truth_with(1, Point3::origin());
        let events = vec![LocationEvent::new(Epoch(0), TagId(9), Point3::origin())];
        let s = ErrorStats::score(&events, &g);
        assert_eq!(s.n, 0);
        assert_eq!(s.unscored, 1);
        assert!(s.mean_xy.is_nan());
    }

    #[test]
    fn reduction_math() {
        let ours = ErrorStats {
            mean_x: 0.0,
            mean_y: 0.0,
            mean_xy: 0.5,
            max_xy: 0.5,
            n: 1,
            unscored: 0,
        };
        let smurf = ErrorStats {
            mean_xy: 1.0,
            ..ours
        };
        assert!((ours.reduction_vs(&smurf) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_zero_baseline_conventions() {
        let zero = ErrorStats {
            mean_x: 0.0,
            mean_y: 0.0,
            mean_xy: 0.0,
            max_xy: 0.0,
            n: 1,
            unscored: 0,
        };
        let nonzero = ErrorStats {
            mean_xy: 0.5,
            ..zero
        };
        // 0/0: both perfect — parity, not NaN
        assert_eq!(zero.reduction_vs(&zero), 0.0);
        // x/0: perfect baseline — capped at -100%, not -inf
        assert_eq!(nonzero.reduction_vs(&zero), -100.0);
        assert!(nonzero.reduction_vs(&zero).is_finite());
        // the normal direction is untouched: perfect ours vs nonzero
        // baseline is a full 100% reduction
        assert_eq!(zero.reduction_vs(&nonzero), 100.0);
    }

    fn ev(epoch: u64, tag: u64, x: f64, y: f64) -> LocationEvent {
        LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(x, y, 0.0))
    }

    #[test]
    fn event_score_buckets_and_f1() {
        let mut g = GroundTruth::new();
        g.set_object(TagId(1), Epoch(0), Point3::new(2.0, 1.0, 0.0));
        g.set_object(TagId(2), Epoch(0), Point3::new(2.0, 5.0, 0.0));
        g.set_object(TagId(3), Epoch(0), Point3::new(2.0, 9.0, 0.0));
        let cfg = EventScoreConfig::default();
        let events = vec![
            ev(10, 1, 2.0, 1.2),  // matched
            ev(10, 2, 2.0, 8.0),  // mislocated (3 ft off)
            ev(10, 99, 2.0, 1.0), // phantom (unknown tag)
        ];
        let s = EventScore::score(&events, &g, &cfg);
        assert_eq!(s.confusion.matched, 1);
        assert_eq!(s.confusion.mislocated, 1);
        assert_eq!(s.confusion.phantom, 1);
        assert_eq!(s.confusion.missed_tags, 2); // tags 2 and 3
        assert!((s.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.f1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn event_score_empty_stream_and_empty_truth() {
        let g = truth_with(1, Point3::origin());
        let cfg = EventScoreConfig::default();
        let s = EventScore::score(&[], &g, &cfg);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
        let s = EventScore::score(&[], &GroundTruth::new(), &cfg);
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn departed_object_events_are_phantoms() {
        let mut g = GroundTruth::new();
        g.set_object(TagId(1), Epoch(0), Point3::origin());
        g.remove_object(TagId(1), Epoch(50));
        let cfg = EventScoreConfig::default();
        let s = EventScore::score(&[ev(60, 1, 0.0, 0.1)], &g, &cfg);
        assert_eq!(s.confusion.phantom, 1);
        let s = EventScore::score(&[ev(40, 1, 0.0, 0.1)], &g, &cfg);
        assert_eq!(s.confusion.matched, 1);
    }

    #[test]
    fn change_detection_delay_measured() {
        let mut g = GroundTruth::new();
        g.set_object(TagId(1), Epoch(0), Point3::new(2.0, 1.0, 0.0));
        g.set_object(TagId(1), Epoch(100), Point3::new(2.0, 7.0, 0.0));
        let cfg = EventScoreConfig::default();
        // a stale pre-move report, then a post-move detection at 130
        let events = vec![ev(105, 1, 2.0, 1.0), ev(130, 1, 2.0, 6.8)];
        let c = ChangeDetection::score(&events, &g, &cfg);
        assert_eq!(c.moves_total, 1);
        assert_eq!(c.moves_detected, 1);
        assert!((c.mean_delay_epochs - 30.0).abs() < 1e-12);
        assert_eq!(c.max_delay_epochs, 30);
        // without the matching event, the move goes undetected
        let c = ChangeDetection::score(&events[..1], &g, &cfg);
        assert_eq!(c.moves_detected, 0);
        assert_eq!(c.mean_delay_epochs, 0.0);
    }

    #[test]
    fn containment_scores_correct_shelf() {
        let layout = WarehouseLayout::linear(2, 8.0, 0.5, 2.0, 0.0);
        let mut g = GroundTruth::new();
        g.set_object(TagId(1), Epoch(0), Point3::new(2.0, 4.0, 0.0)); // shelf 0
        g.set_object(TagId(2), Epoch(0), Point3::new(2.0, 12.0, 0.0)); // shelf 1
        let events = vec![
            ev(5, 1, 2.0, 6.0),  // right shelf (even though 2 ft off)
            ev(5, 2, 2.0, 5.0),  // wrong shelf
            ev(5, 99, 2.0, 4.0), // unknown tag: not attributable
        ];
        let acc = containment_accuracy(&events, &g, &layout);
        assert!((acc - 0.5).abs() < 1e-12);
        assert!(containment_accuracy(&[], &g, &layout).is_nan());
    }
}
