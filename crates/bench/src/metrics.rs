//! Inference-error metrics.

use rfid_sim::GroundTruth;
use rfid_stream::LocationEvent;

/// Error summary of an event stream against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean |x_est - x_true|.
    pub mean_x: f64,
    /// Mean |y_est - y_true|.
    pub mean_y: f64,
    /// Mean Euclidean error in the XY plane — the paper's headline
    /// metric.
    pub mean_xy: f64,
    /// Worst single-event XY error.
    pub max_xy: f64,
    /// Events scored.
    pub n: usize,
    /// Events that could not be scored (no ground truth for the tag).
    pub unscored: usize,
}

impl ErrorStats {
    /// Scores events against ground truth at each event's epoch.
    pub fn score(events: &[LocationEvent], truth: &GroundTruth) -> Self {
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sxy = 0.0;
        let mut max_xy = 0.0f64;
        let mut n = 0usize;
        let mut unscored = 0usize;
        for e in events {
            match truth.object_at(e.tag, e.epoch) {
                Some(t) => {
                    let dx = (e.location.x - t.x).abs();
                    let dy = (e.location.y - t.y).abs();
                    let dxy = e.location.dist_xy(&t);
                    sx += dx;
                    sy += dy;
                    sxy += dxy;
                    max_xy = max_xy.max(dxy);
                    n += 1;
                }
                None => unscored += 1,
            }
        }
        if n == 0 {
            return Self {
                mean_x: f64::NAN,
                mean_y: f64::NAN,
                mean_xy: f64::NAN,
                max_xy: f64::NAN,
                n: 0,
                unscored,
            };
        }
        Self {
            mean_x: sx / n as f64,
            mean_y: sy / n as f64,
            mean_xy: sxy / n as f64,
            max_xy,
            n,
            unscored,
        }
    }

    /// Relative error reduction of `self` vs a `baseline` (the paper's
    /// "49% error reduction over SMURF"), in percent.
    pub fn reduction_vs(&self, baseline: &ErrorStats) -> f64 {
        100.0 * (1.0 - self.mean_xy / baseline.mean_xy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Point3;
    use rfid_stream::{Epoch, TagId};

    fn truth_with(tag: u64, loc: Point3) -> GroundTruth {
        let mut g = GroundTruth::new();
        g.set_object(TagId(tag), Epoch(0), loc);
        g
    }

    #[test]
    fn scores_simple_offsets() {
        let g = truth_with(1, Point3::new(0.0, 0.0, 0.0));
        let events = vec![LocationEvent::new(
            Epoch(5),
            TagId(1),
            Point3::new(3.0, 4.0, 0.0),
        )];
        let s = ErrorStats::score(&events, &g);
        assert_eq!(s.n, 1);
        assert!((s.mean_x - 3.0).abs() < 1e-12);
        assert!((s.mean_y - 4.0).abs() < 1e-12);
        assert!((s.mean_xy - 5.0).abs() < 1e-12);
        assert!((s.max_xy - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_tags_counted_unscored() {
        let g = truth_with(1, Point3::origin());
        let events = vec![LocationEvent::new(Epoch(0), TagId(9), Point3::origin())];
        let s = ErrorStats::score(&events, &g);
        assert_eq!(s.n, 0);
        assert_eq!(s.unscored, 1);
        assert!(s.mean_xy.is_nan());
    }

    #[test]
    fn reduction_math() {
        let ours = ErrorStats {
            mean_x: 0.0,
            mean_y: 0.0,
            mean_xy: 0.5,
            max_xy: 0.5,
            n: 1,
            unscored: 0,
        };
        let smurf = ErrorStats {
            mean_xy: 1.0,
            ..ours
        };
        assert!((ours.reduction_vs(&smurf) - 50.0).abs() < 1e-12);
    }
}
