//! Plain-text experiment reports, mirrored to `results/<name>.txt`.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple aligned-column table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as GitHub-flavored markdown (the form
    /// `experiments -- report` pastes into EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let row_line = |cells: &[String], out: &mut String| {
            out.push('|');
            for c in cells {
                let _ = write!(out, " {} |", c.replace('|', "\\|"));
            }
            out.push('\n');
        };
        row_line(&self.header, &mut out);
        out.push('|');
        for _ in &self.header {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            row_line(row, &mut out);
        }
        out
    }
}

/// A report: a titled text document printed to stdout and mirrored to
/// `results/<name>.txt`.
pub struct Report {
    name: String,
    body: String,
}

impl Report {
    /// Starts a report.
    pub fn new(name: &str, title: &str) -> Self {
        let mut body = String::new();
        let _ = writeln!(body, "== {title} ==");
        Self {
            name: name.to_string(),
            body,
        }
    }

    /// Adds a free-form line.
    pub fn line(&mut self, s: &str) {
        self.body.push_str(s);
        self.body.push('\n');
    }

    /// Adds a rendered table.
    pub fn table(&mut self, t: &Table) {
        self.body.push_str(&t.render());
    }

    /// Prints to stdout and writes `results/<name>.txt`. Returns the
    /// path written (best effort — printing always happens).
    pub fn finish(self) -> Option<PathBuf> {
        println!("{}", self.body);
        let dir = PathBuf::from("results");
        if fs::create_dir_all(&dir).is_err() {
            return None;
        }
        let path = dir.join(format!("{}.txt", self.name));
        match fs::File::create(&path) {
            Ok(mut f) => {
                let _ = f.write_all(self.body.as_bytes());
                Some(path)
            }
            Err(_) => None,
        }
    }

    /// The body accumulated so far (tests).
    pub fn body(&self) -> &str {
        &self.body
    }
}

/// Formats a float with 2 decimals, or "-" for NaN.
pub fn f2(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.2}")
    }
}

/// Formats a float with 3 decimals, or "-" for NaN.
pub fn f3(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header", "c"]);
        t.row(vec!["1", "2", "3"]);
        t.row(vec!["wide-cell", "x", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows the same width
        assert!(!lines[0].trim_end().is_empty());
        assert!(lines[2].starts_with("1"));
        assert!(lines[3].starts_with("wide-cell"));
    }

    #[test]
    fn markdown_table_has_separator_and_escapes_pipes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "x|y"]);
        let md = t.render_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | x\\|y |");
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.236), "1.24");
        assert_eq!(f2(f64::NAN), "-");
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    fn report_accumulates() {
        let mut r = Report::new("test", "Title");
        r.line("hello");
        assert!(r.body().contains("== Title =="));
        assert!(r.body().contains("hello"));
    }
}
