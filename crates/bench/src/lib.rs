//! Experiment harness regenerating every table and figure of §V.
//!
//! * [`metrics`] — scoring of event streams against ground truth: the
//!   paper's continuous "Inference Error in XY Plane (ft)" plus
//!   event-level precision/recall/F1, change-detection delay, and
//!   shelf containment.
//! * [`accuracy`] — the accuracy matrix (every system over the
//!   adversarial scenario library), seeding `BENCH_accuracy.json`.
//! * [`golden`] — bit-exact event-stream digests backing the
//!   `tests/golden/` regression harness.
//! * [`runner`] — drives each system (our engine in its four variants,
//!   SMURF, uniform) over a scenario and collects events, wall-clock
//!   cost, and engine statistics.
//! * [`serving`] — the query-serving load generator (live ingestion +
//!   N TCP client threads), seeding `BENCH_serving.json`.
//! * [`report`] — plain-text tables written to stdout and to
//!   `results/<experiment>.txt`.
//! * [`json`] — a minimal JSON reader so `experiments -- report` can
//!   render the committed `BENCH_*.json` files as markdown tables.
//! * [`obs`] — registry-vs-legacy agreement (the metrics mirror must
//!   reproduce `EngineStats` exactly) and the JSON embedding of
//!   registry snapshots into the `BENCH_*.json` documents.
//!
//! The `experiments` binary exposes one subcommand per figure/table;
//! see `cargo run -p rfid-bench --release --bin experiments -- help`.

pub mod accuracy;
pub mod fault;
pub mod golden;
pub mod json;
pub mod metrics;
pub mod obs;
pub mod recovery;
pub mod report;
pub mod runner;
pub mod serving;

pub use metrics::{
    containment_accuracy, score_scenario, ChangeDetection, Confusion, ErrorStats, EventScore,
    EventScoreConfig, ScenarioScore,
};
pub use runner::{run_baseline_smurf, run_baseline_uniform, run_engine_variant, EngineVariant};
