//! Experiment harness regenerating every table and figure of §V.
//!
//! * [`metrics`] — inference-error scoring of event streams against
//!   ground truth (the paper's "Inference Error in XY Plane (ft)").
//! * [`runner`] — drives each system (our engine in its four variants,
//!   SMURF, uniform) over a scenario and collects events, wall-clock
//!   cost, and engine statistics.
//! * [`report`] — plain-text tables written to stdout and to
//!   `results/<experiment>.txt`.
//!
//! The `experiments` binary exposes one subcommand per figure/table;
//! see `cargo run -p rfid-bench --release --bin experiments -- help`.

pub mod metrics;
pub mod report;
pub mod runner;

pub use metrics::ErrorStats;
pub use runner::{run_baseline_smurf, run_baseline_uniform, run_engine_variant, EngineVariant};
