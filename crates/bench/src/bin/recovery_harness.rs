//! Child-process crash harness: runs a canonical scenario into a
//! durable run directory and — if a fault plan is given — actually
//! dies at the crash point (`std::process::abort`), so a parent test
//! can exercise real kill-and-restart cycles from the outside.
//!
//! ```text
//! recovery_harness run <scenario> <dir> <checkpoint_every> [fault]
//! recovery_harness golden <scenario>
//! ```
//!
//! `run` starts fresh when `<dir>` holds no log and otherwise recovers
//! and resumes — so repeating the same command after a crash *is* the
//! restart. On completion it prints one parseable line per fact:
//!
//! ```text
//! resumed-from <epoch|none>
//! last-durable <epoch|none>
//! replayed-events <n>
//! recover-ms <n>
//! drive-ms <n>
//! digest <16-hex>
//! ```
//!
//! `golden` prints only the `digest` line of an uninterrupted
//! in-memory run — the value `run` must converge to.
//!
//! Scenarios: `small_warehouse`, `low_read_rate`, `moving_object`,
//! `tiny` (see [`rfid_bench::recovery::canonical_scenario`]).

use rfid_bench::fault::FaultPlan;
use rfid_bench::recovery::{self, canonical_scenario, DurableRunOpts, HarnessError, ResumeOutcome};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: recovery_harness run <scenario> <dir> <checkpoint_every> [fault]\n\
         \x20      recovery_harness golden <scenario>\n\
         fault: kill:E | bytes:N | torn:N | ckpt:E"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("golden") => {
            let [_, scenario] = args.as_slice() else {
                return usage();
            };
            let Some((sc, cfg)) = canonical_scenario(scenario) else {
                eprintln!("unknown scenario {scenario:?}");
                return ExitCode::from(2);
            };
            println!("digest {:016x}", recovery::reference_digest(&sc, &cfg));
            ExitCode::SUCCESS
        }
        Some("run") => {
            let (scenario, dir, every, fault) = match args.as_slice() {
                [_, s, d, k] => (s, PathBuf::from(d), k, None),
                [_, s, d, k, f] => (s, PathBuf::from(d), k, Some(f)),
                _ => return usage(),
            };
            let Some((sc, cfg)) = canonical_scenario(scenario) else {
                eprintln!("unknown scenario {scenario:?}");
                return ExitCode::from(2);
            };
            let Ok(checkpoint_every) = every.parse::<u64>() else {
                return usage();
            };
            let plan = match fault.map(|f| f.parse::<FaultPlan>()) {
                None => None,
                Some(Ok(p)) => Some(p),
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let opts = DurableRunOpts {
                checkpoint_every,
                abort_on_fault: true,
                ..DurableRunOpts::default()
            };
            match run(&sc, &cfg, &dir, &opts, plan) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("harness error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

fn run(
    sc: &rfid_sim::scenario::Scenario,
    cfg: &rfid_core::FilterConfig,
    dir: &Path,
    opts: &DurableRunOpts,
    plan: Option<FaultPlan>,
) -> Result<(), HarnessError> {
    let fresh = !dir.join(recovery::LOG_SUBDIR).exists();
    if fresh {
        let out = recovery::run_fresh(sc, cfg, dir, opts, plan)?;
        println!("resumed-from none");
        println!("last-durable none");
        println!("replayed-events 0");
        println!("recover-ms 0");
        println!("drive-ms {}", out.drive_elapsed.as_millis());
        println!("digest {:016x}", out.digest);
    } else {
        let ResumeOutcome {
            run,
            resumed_from,
            last_durable_epoch,
            log_recovery,
            replayed_events,
            recover_elapsed,
        } = recovery::resume(sc, cfg, dir, opts, plan)?;
        match resumed_from {
            Some(e) => println!("resumed-from {e}"),
            None => println!("resumed-from none"),
        }
        match last_durable_epoch {
            Some(e) => println!("last-durable {e}"),
            None => println!("last-durable none"),
        }
        println!("replayed-events {replayed_events}");
        println!("recover-ms {}", recover_elapsed.as_millis());
        println!("drive-ms {}", run.drive_elapsed.as_millis());
        if log_recovery.truncated_bytes > 0 {
            println!("truncated-bytes {}", log_recovery.truncated_bytes);
        }
        if log_recovery.adopted_segments > 0 {
            println!("adopted-segments {}", log_recovery.adopted_segments);
        }
        if log_recovery.rebuilt_manifest {
            println!("rebuilt-manifest");
        }
        println!("digest {:016x}", run.digest);
    }
    Ok(())
}
