//! Regenerates every table and figure of the paper's evaluation (§V).
//!
//! One subcommand per experiment; `all` runs everything. Output goes to
//! stdout and `results/<experiment>.txt`. Absolute numbers differ from
//! the paper (different hardware, Rust instead of Java); the *shape* —
//! who wins, by roughly what factor, where curves bend — is the
//! reproduction target. See EXPERIMENTS.md for the side-by-side record.
//!
//! Usage:
//! ```text
//! cargo run -p rfid-bench --release --bin experiments -- <cmd> [--quick]
//! ```

use rfid_bench::report::{f2, f3, Report, Table};
use rfid_bench::runner::{
    run_baseline_smurf, run_baseline_uniform, run_engine_variant, run_motion_off, EngineVariant,
    InferenceSensor,
};
use rfid_bench::ErrorStats;
use rfid_learn::{calibrate, EmConfig};
use rfid_model::object::LocationPrior;
use rfid_model::sensor::{ConeSensor, LogisticSensorModel, ReadRateModel, SphericalSensor};
use rfid_model::{ModelParams, SensorParams};
use rfid_sim::lab::LabDeployment;
use rfid_sim::scenario;
use rfid_sim::GroundTruth;
use rfid_stream::LocationEvent;

/// Global run options.
#[derive(Debug, Clone, Copy)]
struct Opts {
    /// Shrinks every experiment (fewer points, fewer particles) for a
    /// fast smoke pass.
    quick: bool,
    /// `--repeat N`: run each throughput configuration N times and
    /// report the median-wall-time run instead of the default
    /// best-of-reps. Medians are robust to one-off scheduler stalls,
    /// which dominate on small containers.
    repeat: Option<usize>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // positional parsing that knows `--scenario` takes a value, so
    // `accuracy --scenario churn` does not mistake "churn" for a
    // subcommand
    let mut scenario_filter: Option<String> = None;
    let mut repeat: Option<usize> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenario" => {
                scenario_filter = it.next().cloned();
                if scenario_filter.is_none() {
                    // a forgotten value must not silently run (and with
                    // --json, overwrite) the full matrix
                    eprintln!("--scenario requires a value; see `accuracy --list`");
                    std::process::exit(2);
                }
            }
            "--repeat" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => repeat = Some(n),
                _ => {
                    eprintln!("--repeat requires a positive integer, e.g. --repeat 5");
                    std::process::exit(2);
                }
            },
            s if s.starts_with("--") => {}
            s => positional.push(s),
        }
    }
    let cmd = positional.first().copied().unwrap_or("help");
    let opts = Opts { quick, repeat };

    match cmd {
        "fig5a-sensor-models" => fig5a_sensor_models(opts),
        "fig5d-lab-sensor" => fig5d_lab_sensor(opts),
        "fig5e-shelf-tags" => fig5e_shelf_tags(opts),
        "fig5f-read-rate" => fig5f_read_rate(opts),
        "fig5g-location-noise" => fig5g_location_noise(opts),
        "fig5h-moving-objects" => fig5h_moving_objects(opts),
        "fig5i-scalability-error" | "fig5j-scalability-time" | "fig5ij-scalability" => {
            fig5ij_scalability(opts)
        }
        "fig6b-lab-table" => fig6b_lab_table(opts),
        "throughput" => throughput(opts, args.iter().any(|a| a == "--json")),
        "accuracy" => accuracy(
            opts,
            args.iter().any(|a| a == "--json"),
            scenario_filter.as_deref(),
            args.iter().any(|a| a == "--list"),
        ),
        "serving" => serving(opts, args.iter().any(|a| a == "--json")),
        "recovery" => recovery(opts, args.iter().any(|a| a == "--json")),
        "report" => report(),
        "ablation-init" => ablation_init(opts),
        "ablation-particles" => ablation_particles(opts),
        "ablation-resample" => ablation_resample(opts),
        "all" => {
            fig5a_sensor_models(opts);
            fig5d_lab_sensor(opts);
            fig5e_shelf_tags(opts);
            fig5f_read_rate(opts);
            fig5g_location_noise(opts);
            fig5h_moving_objects(opts);
            fig5ij_scalability(opts);
            fig6b_lab_table(opts);
            ablation_init(opts);
            ablation_particles(opts);
            ablation_resample(opts);
        }
        _ => {
            eprintln!(
                "experiments — regenerate the paper's tables and figures\n\
                 \n\
                 subcommands:\n\
                 \x20 fig5a-sensor-models    true vs learned sensor heatmaps (Fig 5a-c)\n\
                 \x20 fig5d-lab-sensor       learned lab (spherical) sensor model (Fig 5d)\n\
                 \x20 fig5e-shelf-tags       error vs #shelf tags used in learning (Fig 5e)\n\
                 \x20 fig5f-read-rate        error vs major-range read rate (Fig 5f)\n\
                 \x20 fig5g-location-noise   error vs systematic reader-location bias (Fig 5g)\n\
                 \x20 fig5h-moving-objects   error vs object movement distance (Fig 5h)\n\
                 \x20 fig5ij-scalability     error and CPU time vs #objects (Fig 5i/5j)\n\
                 \x20 fig6b-lab-table        lab comparison vs SMURF and uniform (Fig 6b)\n\
                 \x20 throughput             whole-trace engine throughput (--json writes\n\
                 \x20                        BENCH_throughput.json at the repo root)\n\
                 \x20 accuracy               event-level accuracy matrix: engine vs SMURF vs\n\
                 \x20                        uniform over the adversarial scenario library\n\
                 \x20                        (--json writes BENCH_accuracy.json;\n\
                 \x20                        --scenario <name> runs one scenario;\n\
                 \x20                        --list enumerates the library)\n\
                 \x20 serving                query-serving load test: live pipeline ingestion\n\
                 \x20                        + N TCP client threads, latency percentiles\n\
                 \x20                        (--json writes BENCH_serving.json)\n\
                 \x20 recovery               crash-recovery timings: kill each canonical\n\
                 \x20                        scenario mid-trace, recover, resume to digest\n\
                 \x20                        equality (--json writes BENCH_recovery.json)\n\
                 \x20 report                 render the committed BENCH_*.json trajectories\n\
                 \x20                        as markdown tables (for EXPERIMENTS.md)\n\
                 \x20 ablation-init          initialization-cone overestimate sweep\n\
                 \x20 ablation-particles     particles-per-object accuracy/cost frontier\n\
                 \x20 ablation-resample      resampling-threshold policy sweep\n\
                 \x20 all                    run everything\n\
                 \n\
                 flags: --quick     (smaller sweeps for a smoke pass)\n\
                 \x20      --repeat N  (throughput: report the median of N runs\n\
                 \x20                  per configuration instead of the best)"
            );
        }
    }
}

// ---------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------

fn score(events: &[LocationEvent], truth: &GroundTruth) -> ErrorStats {
    ErrorStats::score(events, truth)
}

/// Learns a sensor model (and noise parameters) from a calibration
/// trace with `known_shelf_tags` known tags out of 20 total.
fn learn_from_20_tags(known_shelf_tags: usize, seed: u64, opts: Opts) -> ModelParams {
    let sc = scenario::small_trace(20 - known_shelf_tags, known_shelf_tags, seed);
    let batches = sc.trace.epoch_batches();
    let mut init = ModelParams::default_warehouse();
    // start from a weakly-informed model so learning has work to do
    init.sensor = SensorParams {
        a: [2.0, -0.2, -0.05],
        b: [-0.1, -0.5],
    };
    let cfg = EmConfig {
        iterations: if opts.quick { 2 } else { 4 },
        ..EmConfig::default()
    };
    calibrate(&batches, &sc.trace.shelf_tags, &sc.layout, init, &cfg).params
}

/// ASCII heatmap of a read-rate model over the forward field of view.
fn heatmap<S: ReadRateModel>(model: &S, max_d: f64) -> String {
    let chars = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    // rows: lateral offset +2.5 (top) to -2.5 (bottom); cols: distance
    for li in (-10..=10).rev() {
        let lateral = li as f64 * 0.25;
        for di in 0..=24 {
            let fwd = di as f64 * max_d / 24.0;
            let d = (fwd * fwd + lateral * lateral).sqrt();
            let theta = lateral.atan2(fwd).abs();
            let p = model.p_read_dt(d, theta);
            let idx = ((p * 9.0).round() as usize).min(9);
            out.push(chars[idx]);
        }
        out.push('\n');
    }
    out
}

fn default_report_delay() -> u64 {
    60
}

// ---------------------------------------------------------------------
// Fig. 5(a)-(c): sensor models, true vs learned
// ---------------------------------------------------------------------

fn fig5a_sensor_models(opts: Opts) {
    let mut r = Report::new(
        "fig5a_sensor_models",
        "Fig 5(a)-(c): true simulator sensor model vs models learned by EM",
    );
    let cone = ConeSensor::paper_default();
    r.line("True sensor model (cone, 30deg major + 15deg minor, 4 ft):");
    r.line(&heatmap(&cone, 5.0));

    for &k in &[20usize, 4, 0] {
        let params = learn_from_20_tags(k, 1001 + k as u64, opts);
        let m = LogisticSensorModel::new(params.sensor);
        r.line(&format!(
            "Learned sensor model using {k} shelf tags (a = [{:.2}, {:.2}, {:.2}], b = [{:.2}, {:.2}]):",
            params.sensor.a[0], params.sensor.a[1], params.sensor.a[2],
            params.sensor.b[0], params.sensor.b[1]
        ));
        r.line(&heatmap(&m, 5.0));
    }
    r.line("# paper: learned-with-20 is close to true; quality degrades gradually");
    r.line("# with fewer shelf tags; 0 shelf tags lands in a local maximum.");
    r.finish();
}

// ---------------------------------------------------------------------
// Fig. 5(d): learned lab sensor model
// ---------------------------------------------------------------------

fn fig5d_lab_sensor(opts: Opts) {
    let mut r = Report::new(
        "fig5d_lab_sensor",
        "Fig 5(d): sensor model learned from the (simulated) lab reader",
    );
    let lab = LabDeployment::standard();
    let trace = lab.generate(500, 2024);
    let batches = trace.epoch_batches();
    let mut init = ModelParams::default_warehouse();
    init.sensor = SensorParams {
        a: [2.0, -0.2, -0.05],
        b: [-0.1, -0.5],
    };
    let cfg = EmConfig {
        iterations: if opts.quick { 2 } else { 4 },
        ..EmConfig::default()
    };
    let learned = calibrate(&batches, &trace.shelf_tags, &lab.prior(), init, &cfg).params;
    let truth = SphericalSensor::for_timeout_ms(500);
    r.line("True lab antenna (spherical, wide minor range):");
    r.line(&heatmap(&truth, 3.5));
    r.line("Learned from the lab trace:");
    r.line(&heatmap(&LogisticSensorModel::new(learned.sensor), 3.5));
    r.line("# paper: the learned lab model is spherical with a wide minor range,");
    r.line("# read rate inversely related to the angle from the antenna center.");
    r.finish();
}

// ---------------------------------------------------------------------
// Fig. 5(e): inference error vs shelf tags used in learning
// ---------------------------------------------------------------------

fn fig5e_shelf_tags(opts: Opts) {
    let mut r = Report::new(
        "fig5e_shelf_tags",
        "Fig 5(e): inference error vs number of shelf tags used in learning",
    );
    let particles = if opts.quick { 300 } else { 1000 };
    let test = scenario::small_trace(10, 4, 555);
    let batches = test.trace.epoch_batches();
    let params = ModelParams::default_warehouse();

    // reference curves
    let true_run = run_engine_variant(
        &batches,
        &test.layout,
        &test.trace.shelf_tags,
        EngineVariant::Factored,
        InferenceSensor::TrueCone(ConeSensor::paper_default()),
        params,
        particles,
        default_report_delay(),
    );
    let true_err = score(&true_run.events, &test.trace.truth).mean_xy;
    let uni_run = run_baseline_uniform(
        &batches,
        vec![LocationPrior::bounds(&test.layout)],
        4.4,
        &test.trace.shelf_tags,
        9,
    );
    let uni_err = score(&uni_run.events, &test.trace.truth).mean_xy;

    let ks: Vec<usize> = if opts.quick {
        vec![0, 4, 20]
    } else {
        vec![0, 2, 4, 8, 12, 16, 20]
    };
    let mut t = Table::new(vec![
        "shelf tags",
        "uniform (ft)",
        "learned model (ft)",
        "true model (ft)",
    ]);
    for &k in &ks {
        let learned = learn_from_20_tags(k, 2000 + k as u64, opts);
        let run = run_engine_variant(
            &batches,
            &test.layout,
            &test.trace.shelf_tags,
            EngineVariant::Factored,
            InferenceSensor::Logistic(learned.sensor),
            learned,
            particles,
            default_report_delay(),
        );
        let err = score(&run.events, &test.trace.truth).mean_xy;
        t.row(vec![k.to_string(), f2(uni_err), f2(err), f2(true_err)]);
    }
    r.table(&t);
    r.line("# paper: learned-model error close to true-model error for >= 4 shelf");
    r.line("# tags, much better than uniform; 0 shelf tags degrades (local maximum).");
    r.finish();
}

// ---------------------------------------------------------------------
// Fig. 5(f): read-rate sweep
// ---------------------------------------------------------------------

fn fig5f_read_rate(opts: Opts) {
    let mut r = Report::new(
        "fig5f_read_rate",
        "Fig 5(f): inference error vs read rate in the major detection range",
    );
    let particles = if opts.quick { 300 } else { 1000 };
    let rrs: Vec<f64> = if opts.quick {
        vec![1.0, 0.7, 0.5]
    } else {
        vec![1.0, 0.9, 0.8, 0.7, 0.6, 0.5]
    };
    let mut t = Table::new(vec!["read rate (%)", "uniform (ft)", "inference (ft)"]);
    for &rr in &rrs {
        let sc = scenario::read_rate_trace(rr, 333);
        let batches = sc.trace.epoch_batches();
        let run = run_engine_variant(
            &batches,
            &sc.layout,
            &sc.trace.shelf_tags,
            EngineVariant::Factored,
            InferenceSensor::TrueCone(ConeSensor::with_rr_major(rr)),
            ModelParams::default_warehouse(),
            particles,
            default_report_delay(),
        );
        let uni = run_baseline_uniform(
            &batches,
            vec![LocationPrior::bounds(&sc.layout)],
            4.4,
            &sc.trace.shelf_tags,
            10,
        );
        t.row(vec![
            format!("{:.0}", rr * 100.0),
            f2(score(&uni.events, &sc.trace.truth).mean_xy),
            f2(score(&run.events, &sc.trace.truth).mean_xy),
        ]);
    }
    r.table(&t);
    r.line("# paper: inference degrades only slowly as the read rate drops,");
    r.line("# staying well below the uniform bound.");
    r.finish();
}

// ---------------------------------------------------------------------
// Fig. 5(g): reader-location noise sweep
// ---------------------------------------------------------------------

fn fig5g_location_noise(opts: Opts) {
    let mut r = Report::new(
        "fig5g_location_noise",
        "Fig 5(g): error vs systematic reader-location bias along y (sigma_y = 0.2)",
    );
    let particles = if opts.quick { 500 } else { 2000 };
    let mus: Vec<f64> = if opts.quick {
        vec![0.1, 0.5, 1.0]
    } else {
        vec![0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0]
    };
    let sigma_y = 0.2;
    let mut t = Table::new(vec![
        "mu_y (ft)",
        "uniform",
        "motion model Off",
        "model On - learned",
        "model On - true",
    ]);
    for &mu in &mus {
        let sc = scenario::location_noise_trace(mu, sigma_y, 444);
        let batches = sc.trace.epoch_batches();
        let cone = ConeSensor::paper_default();

        // true sensing parameters
        let mut true_params = ModelParams::default_warehouse();
        true_params.sensing.mu = rfid_geom::Vec3::new(0.0, mu, 0.0);
        true_params.sensing.sigma = rfid_geom::Vec3::new(0.01, sigma_y, 0.0);

        let on_true = run_engine_variant(
            &batches,
            &sc.layout,
            &sc.trace.shelf_tags,
            EngineVariant::Factored,
            InferenceSensor::TrueCone(cone),
            true_params,
            particles,
            default_report_delay(),
        );

        // learned sensing parameters (EM on a training trace with the
        // same noise regime)
        let train = scenario::location_noise_trace(mu, sigma_y, 445);
        let em_cfg = EmConfig {
            iterations: if opts.quick { 2 } else { 3 },
            ..EmConfig::default()
        };
        let learned = calibrate(
            &train.trace.epoch_batches(),
            &train.trace.shelf_tags,
            &train.layout,
            ModelParams::default_warehouse(),
            &em_cfg,
        )
        .params;
        let mut learned_params = ModelParams::default_warehouse();
        learned_params.sensing = learned.sensing;
        learned_params.motion = learned.motion;
        let on_learned = run_engine_variant(
            &batches,
            &sc.layout,
            &sc.trace.shelf_tags,
            EngineVariant::Factored,
            InferenceSensor::TrueCone(cone),
            learned_params,
            particles,
            default_report_delay(),
        );

        let off = run_motion_off(
            &batches,
            &sc.layout,
            &sc.trace.shelf_tags,
            InferenceSensor::TrueCone(cone),
            ModelParams::default_warehouse(),
            particles,
            default_report_delay(),
        );
        let uni = run_baseline_uniform(
            &batches,
            vec![LocationPrior::bounds(&sc.layout)],
            4.4,
            &sc.trace.shelf_tags,
            11,
        );
        t.row(vec![
            f2(mu),
            f2(score(&uni.events, &sc.trace.truth).mean_xy),
            f2(score(&off.events, &sc.trace.truth).mean_xy),
            f2(score(&on_learned.events, &sc.trace.truth).mean_xy),
            f2(score(&on_true.events, &sc.trace.truth).mean_xy),
        ]);
    }
    r.table(&t);
    r.line("# paper: without the motion model the error grows ~linearly in mu_y;");
    r.line("# the full model corrects the systematic error (mostly via shelf tags),");
    r.line("# and learned sensing parameters approach the true-parameter curve.");
    r.finish();
}

// ---------------------------------------------------------------------
// Fig. 5(h): moving objects
// ---------------------------------------------------------------------

fn fig5h_moving_objects(opts: Opts) {
    let mut r = Report::new(
        "fig5h_moving_objects",
        "Fig 5(h): inference error vs distance of object movement",
    );
    let particles = if opts.quick { 300 } else { 1000 };
    let dists: Vec<f64> = if opts.quick {
        vec![0.5, 4.0, 20.0]
    } else {
        vec![0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 10.0, 15.0, 20.0]
    };
    let mut t = Table::new(vec!["move distance (ft)", "uniform", "inference"]);
    // score only the moved object, averaged over seeds: its post-move
    // events carry the sensitivity the figure is about (the other 15
    // static objects would dilute it 15:1)
    let seeds: &[u64] = if opts.quick { &[666] } else { &[666, 667, 668] };
    for &d in &dists {
        let mut err_inf = 0.0;
        let mut err_uni = 0.0;
        for &seed in seeds {
            let sc = scenario::moving_object_trace(d, 200, seed);
            let batches = sc.trace.epoch_batches();
            let moved_only = |events: &[LocationEvent]| -> Vec<LocationEvent> {
                events
                    .iter()
                    .filter(|e| e.tag == scenario::MOVED_TAG)
                    .copied()
                    .collect()
            };
            let run = run_engine_variant(
                &batches,
                &sc.layout,
                &sc.trace.shelf_tags,
                EngineVariant::Factored,
                InferenceSensor::TrueCone(ConeSensor::paper_default()),
                ModelParams::default_warehouse(),
                particles,
                default_report_delay(),
            );
            let uni = run_baseline_uniform(
                &batches,
                vec![LocationPrior::bounds(&sc.layout)],
                4.4,
                &sc.trace.shelf_tags,
                12,
            );
            err_inf += score(&moved_only(&run.events), &sc.trace.truth).mean_xy;
            err_uni += score(&moved_only(&uni.events), &sc.trace.truth).mean_xy;
        }
        t.row(vec![
            f2(d),
            f2(err_uni / seeds.len() as f64),
            f2(err_inf / seeds.len() as f64),
        ]);
    }
    r.table(&t);
    r.line("# paper: error peaks for mid-range moves (~2-6 ft) where old and new");
    r.line("# locations are hard to tell apart; large moves trigger full particle");
    r.line("# re-creation and the error drops back down.");
    r.finish();
}

// ---------------------------------------------------------------------
// Fig. 5(i)/(j): scalability
// ---------------------------------------------------------------------

fn fig5ij_scalability(opts: Opts) {
    let mut r = Report::new(
        "fig5ij_scalability",
        "Fig 5(i)/(j): inference error and CPU time per reading vs number of objects",
    );
    let particles = if opts.quick { 200 } else { 1000 };
    let unfactored_particles = if opts.quick { 5_000 } else { 50_000 };

    struct Row {
        variant: &'static str,
        n: usize,
        err: f64,
        ms: f64,
        rps: f64,
        mem_mb: f64,
    }
    let mut rows: Vec<Row> = Vec::new();

    let sizes_unf: &[usize] = if opts.quick { &[10] } else { &[10, 20] };
    let sizes_fac: &[usize] = if opts.quick {
        &[10, 100]
    } else {
        &[10, 100, 500]
    };
    let sizes_idx: &[usize] = if opts.quick {
        &[10, 100, 1000]
    } else {
        &[10, 100, 1000, 10_000]
    };
    let sizes_full: &[usize] = if opts.quick {
        &[10, 100, 1000]
    } else {
        &[10, 100, 1000, 10_000, 20_000]
    };

    let run_one = |variant: EngineVariant, n: usize, rows: &mut Vec<Row>| {
        let sc = scenario::scalability_trace(n, 777);
        let batches = sc.trace.epoch_batches();
        let out = run_engine_variant(
            &batches,
            &sc.layout,
            &sc.trace.shelf_tags,
            variant,
            InferenceSensor::TrueCone(ConeSensor::paper_default()),
            ModelParams::default_warehouse(),
            particles,
            default_report_delay(),
        );
        let err = score(&out.events, &sc.trace.truth).mean_xy;
        eprintln!(
            "  [{}] n={n}: err={:.2} ft, {:.3} ms/reading",
            variant.label(),
            err,
            out.ms_per_reading()
        );
        rows.push(Row {
            variant: variant.label(),
            n,
            err,
            ms: out.ms_per_reading(),
            rps: out.readings_per_sec(),
            mem_mb: out.memory_bytes as f64 / (1024.0 * 1024.0),
        });
    };

    for &n in sizes_unf {
        run_one(
            EngineVariant::Unfactored {
                particles: unfactored_particles,
            },
            n,
            &mut rows,
        );
    }
    for &n in sizes_fac {
        run_one(EngineVariant::Factored, n, &mut rows);
    }
    for &n in sizes_idx {
        run_one(EngineVariant::FactoredIndexed, n, &mut rows);
    }
    for &n in sizes_full {
        run_one(EngineVariant::Full, n, &mut rows);
    }

    let mut t = Table::new(vec![
        "variant",
        "#objects",
        "error XY (ft)",
        "ms/reading",
        "readings/s",
        "memory (MB)",
    ]);
    for row in &rows {
        t.row(vec![
            row.variant.to_string(),
            row.n.to_string(),
            f2(row.err),
            f3(row.ms),
            format!("{:.0}", row.rps),
            f2(row.mem_mb),
        ]);
    }
    r.table(&t);
    r.line("# paper: the unfactorized filter is orders of magnitude slower and");
    r.line("# stops scaling around 20 objects; factorization gets to hundreds;");
    r.line("# the spatial index makes the per-reading cost flat in #objects; and");
    r.line("# compression cuts cost and memory further (>1500 readings/s).");
    r.finish();
}

// ---------------------------------------------------------------------
// Throughput baseline: whole-trace readings/sec per engine variant
// ---------------------------------------------------------------------

/// One measured throughput row.
struct ThroughputRow {
    variant: &'static str,
    objects: usize,
    workers: usize,
    shards: usize,
    /// Scan rounds of the workload (2 = the standard trace; larger
    /// values are the endurance runs probing bounded-memory streaming).
    rounds: usize,
    epochs: u64,
    readings: usize,
    readings_per_sec: f64,
    ms_per_reading: f64,
    memory_mb: f64,
    events: usize,
    /// Synchronizer buffer high-water (epochs) — must stay flat as
    /// `rounds` grows.
    sync_high_water: usize,
    /// Drained-batch buffer high-water — must stay flat as `rounds`
    /// grows.
    batch_high_water: usize,
    /// Per-stage engine time (µs) over the whole run — where a perf PR
    /// should look next. Zero for non-engine variants.
    ingest_us: u64,
    infer_us: u64,
    emit_us: u64,
}

/// One measured multi-process cluster row: a real router + N worker
/// processes + coordinator over sockets (see `crates/cluster`).
struct ClusterRow {
    scenario: &'static str,
    worker_processes: usize,
    readings: usize,
    events: usize,
    elapsed_ms: f64,
    readings_per_sec: f64,
    digest: u64,
    /// Whether the merged event stream was bit-identical to the
    /// single-process engine — the gate that makes the wall-clock
    /// number meaningful at all.
    digest_match: bool,
}

/// Measures whole-trace throughput of each engine variant through the
/// **streaming pipeline** (incremental source → synchronizer → engine
/// → sink) on the `bench_scalability` scenario (`scalability_trace(100,
/// 99)`, 200 particles/object — the same workload as the criterion
/// bench), plus a `worker_threads` sweep, a `num_shards` sweep, and an
/// endurance pair (2 vs 20 scan rounds) whose pipeline-buffer
/// high-water marks demonstrate bounded-memory streaming. Each
/// configuration runs `reps` times; the best run is reported (min wall
/// time), the standard way to suppress scheduler noise.
fn throughput(opts: Opts, json: bool) {
    let mut r = Report::new(
        "throughput",
        "Whole-trace pipeline throughput (bench_scalability scenario + worker/shard sweeps)",
    );
    let reps = opts.repeat.unwrap_or(if opts.quick { 1 } else { 3 });
    // --repeat N reports the median run; the default reports the best
    // (min wall time), the standard way to suppress scheduler noise.
    let use_median = opts.repeat.is_some();
    let particles = 200;

    let mut rows: Vec<ThroughputRow> = Vec::new();
    let mut last_per_shard: Option<Vec<rfid_core::ShardCounts>> = None;
    // registry-vs-legacy agreement: every measured run is bracketed by
    // a registry snapshot diff, and the diff must reproduce the run's
    // `EngineStats` exactly (stage histogram `_sum` == struct stage
    // micros, mirrored counters == struct fields). This is the proof
    // that the observability layer reports the same numbers the legacy
    // tables always printed.
    let bench_baseline = rfid_obs::global().snapshot();
    let mut agreed_runs = 0usize;
    let mut disagreements: Vec<String> = Vec::new();
    let mut run_one = |sc: &rfid_sim::scenario::Scenario,
                       objects: usize,
                       rounds: usize,
                       variant: EngineVariant,
                       workers: usize,
                       shards: usize,
                       rows: &mut Vec<ThroughputRow>| {
        let mut runs: Vec<rfid_bench::runner::RunOutput> = (0..reps)
            .map(|_| {
                let before = rfid_obs::global().snapshot();
                let out = rfid_bench::runner::run_pipeline_variant_opts(
                    &sc.trace,
                    &sc.layout,
                    variant,
                    InferenceSensor::TrueCone(ConeSensor::paper_default()),
                    ModelParams::default_warehouse(),
                    rfid_bench::runner::RunOpts::new(particles, default_report_delay())
                        .with_workers(workers)
                        .with_shards(shards),
                );
                let delta = rfid_obs::global().snapshot().diff(&before);
                if let Some(stats) = out.stats.as_ref() {
                    match rfid_bench::obs::engine_delta_agrees(&delta, stats) {
                        Ok(()) => agreed_runs += 1,
                        Err(e) => disagreements.push(format!(
                            "[{} n={objects} w={workers} s={shards}] {e}",
                            variant.label()
                        )),
                    }
                }
                out
            })
            .collect();
        runs.sort_by_key(|o| o.elapsed);
        // min at index 0; median at len/2 (upper median for even N)
        let pick = if use_median { runs.len() / 2 } else { 0 };
        let out = runs.swap_remove(pick);
        let pstats = out.pipeline.expect("pipeline run records stats");
        let (ingest_us, infer_us, emit_us) = out
            .stats
            .as_ref()
            .map(|s| (s.ingest_us, s.infer_us, s.emit_us))
            .unwrap_or_default();
        eprintln!(
            "  [{} n={objects} w={workers} s={shards} r={rounds}] {:.0} readings/s, \
             {:.3} ms/reading, sync hw {}, batch hw {}, \
             stages i/f/e {ingest_us}/{infer_us}/{emit_us} µs",
            variant.label(),
            out.readings_per_sec(),
            out.ms_per_reading(),
            pstats.sync_pending_high_water,
            pstats.batch_buffer_high_water,
        );
        last_per_shard = out.stats.as_ref().map(|s| s.per_shard.clone());
        rows.push(ThroughputRow {
            variant: variant.label(),
            objects,
            workers,
            shards,
            rounds,
            epochs: pstats.epochs,
            readings: out.readings,
            readings_per_sec: out.readings_per_sec(),
            ms_per_reading: out.ms_per_reading(),
            memory_mb: out.memory_bytes as f64 / (1024.0 * 1024.0),
            events: out.events.len(),
            sync_high_water: pstats.sync_pending_high_water,
            batch_high_water: pstats.batch_buffer_high_water,
            ingest_us,
            infer_us,
            emit_us,
        });
    };

    // single-threaded variant comparison (the acceptance baseline)
    let sc100 = scenario::scalability_trace(100, 99);
    for variant in [
        EngineVariant::Factored,
        EngineVariant::FactoredIndexed,
        EngineVariant::Full,
    ] {
        run_one(&sc100, 100, 2, variant, 1, 1, &mut rows);
    }
    // worker sweep on a denser multi-object trace (factored: every
    // object is active every epoch, so the fan-out has real work)
    let sweep_n = if opts.quick { 200 } else { 500 };
    let sc_sweep = scenario::scalability_trace(sweep_n, 99);
    for workers in [1usize, 2, 4] {
        run_one(
            &sc_sweep,
            sweep_n,
            2,
            EngineVariant::Factored,
            workers,
            1,
            &mut rows,
        );
    }
    // shard sweep: state partitioning must be near-free single-threaded
    for shards in [2usize, 8] {
        run_one(
            &sc100,
            100,
            2,
            EngineVariant::FactoredIndexed,
            1,
            shards,
            &mut rows,
        );
    }
    // endurance pair: 10x the scan rounds, same warehouse — the
    // pipeline's buffer high-water marks must stay flat (O(open
    // epochs), not O(trace length))
    let endurance_rounds = if opts.quick { 6 } else { 20 };
    let sc_short = scenario::endurance_trace(100, 2, 99);
    let sc_long = scenario::endurance_trace(100, endurance_rounds, 99);
    run_one(&sc_short, 100, 2, EngineVariant::Full, 1, 4, &mut rows);
    run_one(
        &sc_long,
        100,
        endurance_rounds,
        EngineVariant::Full,
        1,
        4,
        &mut rows,
    );
    if let Some(per_shard) = &last_per_shard {
        let line: Vec<String> = per_shard
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "shard {i}: {} objects, {} compressed, {} cooldown",
                    c.objects, c.compressed, c.cooldown_entries
                )
            })
            .collect();
        r.line(&format!(
            "per-shard state after the endurance run ({} shards): {}",
            per_shard.len(),
            line.join("; ")
        ));
    }
    {
        let short = &rows[rows.len() - 2];
        let long = &rows[rows.len() - 1];
        r.line(&format!(
            "endurance: {}x epochs ({} -> {}), sync high-water {} -> {}, batch high-water {} -> {}",
            long.epochs / short.epochs.max(1),
            short.epochs,
            long.epochs,
            short.sync_high_water,
            long.sync_high_water,
            short.batch_high_water,
            long.batch_high_water,
        ));
    }

    let mut t = Table::new(vec![
        "variant",
        "#objects",
        "workers",
        "shards",
        "rounds",
        "epochs",
        "readings",
        "readings/s",
        "ms/reading",
        "memory (MB)",
        "ingest µs",
        "infer µs",
        "emit µs",
        "sync hw",
        "batch hw",
        "events",
    ]);
    for row in &rows {
        t.row(vec![
            row.variant.to_string(),
            row.objects.to_string(),
            row.workers.to_string(),
            row.shards.to_string(),
            row.rounds.to_string(),
            row.epochs.to_string(),
            row.readings.to_string(),
            format!("{:.0}", row.readings_per_sec),
            f3(row.ms_per_reading),
            f2(row.memory_mb),
            row.ingest_us.to_string(),
            row.infer_us.to_string(),
            row.emit_us.to_string(),
            row.sync_high_water.to_string(),
            row.batch_high_water.to_string(),
            row.events.to_string(),
        ]);
    }
    r.table(&t);
    // the registry dump of exactly the measured runs above (taken
    // before the cluster family, whose in-process reference digest
    // would otherwise leak into the engine counters)
    let run_metrics = rfid_obs::global().snapshot().diff(&bench_baseline);
    r.line(&if disagreements.is_empty() {
        format!(
            "registry vs legacy: exact agreement on all {agreed_runs} measured engine runs \
             (stage histogram sums == EngineStats stage micros, mirrored counters == struct \
             fields)"
        )
    } else {
        format!(
            "# WARNING: registry/legacy disagreement on {}/{} runs: {}",
            disagreements.len(),
            agreed_runs + disagreements.len(),
            disagreements.join(" | ")
        )
    });

    // cluster row family: the same engine split over real processes —
    // router + N worker processes + coordinator (crates/cluster). The
    // wall clock covers process launch, socket setup, the full epoch
    // protocol, and the coordinator's k-way merge; a row only counts
    // when the merged stream is bit-identical to the single-process
    // engine, so the numbers can never quietly measure a divergent run.
    let cluster_scenario = "small_warehouse";
    let mut cluster_rows: Vec<ClusterRow> = Vec::new();
    {
        let (sc, cfg) =
            rfid_cluster::canonical_scenario(cluster_scenario).expect("canonical scenario");
        let cluster_readings: usize = sc
            .trace
            .epoch_batches()
            .iter()
            .map(|b| b.readings.len())
            .sum();
        let expected = rfid_bench::recovery::reference_digest(&sc, &cfg);
        'sweep: for n in [1usize, 2, 4] {
            let mut best: Option<(std::time::Duration, rfid_cluster::ClusterOutcome)> = None;
            for _ in 0..reps {
                let start = std::time::Instant::now();
                match rfid_cluster::LocalCluster::new(cluster_scenario, n).run() {
                    Ok(outcome) => {
                        let elapsed = start.elapsed();
                        if best.as_ref().is_none_or(|(t, _)| elapsed < *t) {
                            best = Some((elapsed, outcome));
                        }
                    }
                    Err(e) => {
                        eprintln!(
                            "  [cluster w={n}] skipped: {e} (build the cluster binaries \
                             first: cargo build --release -p rfid-cluster)"
                        );
                        break 'sweep;
                    }
                }
            }
            let Some((elapsed, outcome)) = best else {
                break;
            };
            let secs = elapsed.as_secs_f64();
            eprintln!(
                "  [cluster {cluster_scenario} w={n}] {:.0} readings/s wall, {} events, \
                 digest {}",
                cluster_readings as f64 / secs,
                outcome.events,
                if outcome.digest == expected {
                    "matches the single-process engine"
                } else {
                    "MISMATCH"
                },
            );
            cluster_rows.push(ClusterRow {
                scenario: cluster_scenario,
                worker_processes: n,
                readings: cluster_readings,
                events: outcome.events,
                elapsed_ms: secs * 1e3,
                readings_per_sec: cluster_readings as f64 / secs,
                digest: outcome.digest,
                digest_match: outcome.digest == expected,
            });
        }
    }
    if !cluster_rows.is_empty() {
        r.line("multi-process cluster (router + N worker processes + coordinator):");
        let mut ct = Table::new(vec![
            "scenario",
            "worker procs",
            "readings",
            "readings/s (wall)",
            "elapsed ms",
            "events",
            "digest vs engine",
        ]);
        for row in &cluster_rows {
            ct.row(vec![
                row.scenario.to_string(),
                row.worker_processes.to_string(),
                row.readings.to_string(),
                format!("{:.0}", row.readings_per_sec),
                f2(row.elapsed_ms),
                row.events.to_string(),
                if row.digest_match {
                    format!("{:#018x} (bit-identical)", row.digest)
                } else {
                    format!("{:#018x} MISMATCH", row.digest)
                },
            ]);
        }
        r.table(&ct);
    }
    r.finish();

    if json {
        let mut s = String::from("{\n  \"scenario\": \"endurance_trace(n, rounds, 99)\",\n");
        s.push_str(&format!("  \"particles_per_object\": {particles},\n"));
        // recorded single-threaded trajectory numbers on the 100-object
        // workload, kept in the file so any run can be compared against
        // the history (see EXPERIMENTS.md): pr2 = seed hot path,
        // pr3 = fused hot path through the batch API, pr7 = the
        // pre-data-oriented-storage rerun measured back-to-back against
        // the PR 8 rows on the same machine
        s.push_str(
            "  \"baseline_pr2_readings_per_sec\": {\"Factorized\": 753.3, \
             \"Factorized+Index\": 2198.7, \"Factorized+Index+Compression\": 6538.4},\n",
        );
        s.push_str(
            "  \"baseline_pr3_batch_readings_per_sec\": {\"Factorized\": 4149.0, \
             \"Factorized+Index\": 10509.0, \"Factorized+Index+Compression\": 24223.0},\n",
        );
        s.push_str(
            "  \"baseline_pr7_readings_per_sec\": {\"Factorized\": 3869.0, \
             \"Factorized+Index\": 10293.0, \"Factorized+Index+Compression\": 22552.0},\n",
        );
        s.push_str("  \"rows\": [\n");
        for (i, row) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"variant\": \"{}\", \"objects\": {}, \"worker_threads\": {}, \
                 \"num_shards\": {}, \"rounds\": {}, \"epochs\": {}, \
                 \"readings\": {}, \"readings_per_sec\": {:.1}, \"ms_per_reading\": {:.4}, \
                 \"memory_mb\": {:.3}, \"ingest_us\": {}, \"infer_us\": {}, \
                 \"emit_us\": {}, \"sync_pending_high_water\": {}, \
                 \"batch_buffer_high_water\": {}, \"events\": {}}}{}\n",
                row.variant,
                row.objects,
                row.workers,
                row.shards,
                row.rounds,
                row.epochs,
                row.readings,
                row.readings_per_sec,
                row.ms_per_reading,
                row.memory_mb,
                row.ingest_us,
                row.infer_us,
                row.emit_us,
                row.sync_high_water,
                row.batch_high_water,
                row.events,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        // the registry dump of the measured runs, so `experiments --
        // report` can render the snapshot table and future runs can be
        // compared metric by metric
        s.push_str(&format!(
            "  \"registry_agreement\": {},\n  \"metrics\": {},\n",
            disagreements.is_empty(),
            rfid_bench::obs::metrics_json(&run_metrics, "  "),
        ));
        s.push_str(&format!(
            "  \"cluster_scenario\": \"{cluster_scenario}\",\n"
        ));
        s.push_str("  \"cluster_rows\": [\n");
        for (i, row) in cluster_rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"worker_processes\": {}, \"readings\": {}, \
                 \"readings_per_sec\": {:.1}, \"elapsed_ms\": {:.2}, \"events\": {}, \
                 \"digest\": \"{:#018x}\", \"digest_match\": {}}}{}\n",
                row.scenario,
                row.worker_processes,
                row.readings,
                row.readings_per_sec,
                row.elapsed_ms,
                row.events,
                row.digest,
                row.digest_match,
                if i + 1 == cluster_rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        std::fs::write("BENCH_throughput.json", &s).expect("write BENCH_throughput.json");
        eprintln!("  wrote BENCH_throughput.json");
    }
}

// ---------------------------------------------------------------------
// Accuracy matrix: event-level scores over the adversarial library
// ---------------------------------------------------------------------

/// Runs the accuracy matrix (engine vs SMURF vs uniform over the
/// adversarial scenario library × read-rate sweep) and, with `--json`,
/// seeds `BENCH_accuracy.json` — the quality trajectory future PRs are
/// judged against, mirroring how `BENCH_throughput.json` gates perf.
/// `--scenario <name>` restricts the run to matching scenarios (for
/// debugging one workload without the full matrix); `--list` only
/// enumerates the library.
fn accuracy(opts: Opts, json: bool, scenario_filter: Option<&str>, list: bool) {
    use rfid_bench::accuracy::{
        run_matrix_filtered, scenario_names, to_json, AccuracyConfig, READ_RATE_SWEEP,
    };

    if list {
        println!("accuracy scenario library (full / [quick subset]):");
        let quick = scenario_names(true);
        for name in scenario_names(false) {
            let marker = if quick.contains(&name) {
                " [quick]"
            } else {
                ""
            };
            println!("  {name}{marker}");
        }
        return;
    }
    if let Some(f) = scenario_filter {
        let names = scenario_names(opts.quick);
        if !names.iter().any(|n| n.contains(f)) {
            eprintln!("--scenario {f:?} matches nothing; available: {names:?}");
            std::process::exit(2);
        }
    }

    let mut r = Report::new(
        "accuracy",
        "Event-level accuracy matrix: engine vs SMURF vs uniform per scenario",
    );
    let cfg = AccuracyConfig::standard(opts.quick);
    let rows = run_matrix_filtered(&cfg, opts.quick, scenario_filter);

    let mut t = Table::new(vec![
        "scenario",
        "system",
        "events",
        "precision",
        "recall",
        "F1",
        "mean XY (ft)",
        "containment",
        "moves det.",
        "delay (ep)",
    ]);
    for row in &rows {
        let e = &row.score.events;
        let c = &row.score.change;
        t.row(vec![
            row.scenario.to_string(),
            row.system.to_string(),
            e.events.to_string(),
            f3(e.precision),
            f3(e.recall),
            f3(e.f1),
            f2(row.score.error.mean_xy),
            if row.score.containment.is_finite() {
                f3(row.score.containment)
            } else {
                "-".to_string()
            },
            format!("{}/{}", c.moves_detected, c.moves_total),
            f2(c.mean_delay_epochs),
        ]);
    }
    r.table(&t);

    // the paper's headline ordering, as event-level F1 on the sweep
    let f1_of = |scenario: &str, system: &str| {
        rows.iter()
            .find(|r| r.scenario == scenario && r.system == system)
            .map(|r| r.score.events.f1)
    };
    let mut ordering_holds = true;
    let mut checked = 0usize;
    for sweep in READ_RATE_SWEEP {
        let (Some(eng), Some(smf), Some(uni)) = (
            f1_of(sweep, "engine"),
            f1_of(sweep, "smurf"),
            f1_of(sweep, "uniform"),
        ) else {
            // a missing point must be reported, never silently counted
            // as passing (quick mode runs a sweep subset)
            r.line(&format!("{sweep}: not in this run — skipped"));
            continue;
        };
        checked += 1;
        let ok = eng > smf && eng > uni;
        ordering_holds &= ok;
        r.line(&format!(
            "{sweep}: engine F1 {eng:.3} vs smurf {smf:.3} / uniform {uni:.3} — {}",
            if ok {
                "engine strictly ahead"
            } else {
                "ORDERING VIOLATED"
            }
        ));
    }
    r.line(&if checked == 0 {
        "# WARNING: no read-rate sweep point was run — ordering unchecked.".to_string()
    } else if ordering_holds {
        format!(
            "# paper ordering holds: factored filter > SMURF, uniform on all {checked}/{} sweep \
             points run.",
            READ_RATE_SWEEP.len()
        )
    } else {
        "# WARNING: the paper's headline ordering failed on the read-rate sweep.".to_string()
    });
    r.finish();

    if json {
        if scenario_filter.is_some() {
            // a filtered run must never overwrite the committed
            // full-matrix trajectory
            eprintln!("  --scenario is set: refusing to write a partial BENCH_accuracy.json");
        } else {
            std::fs::write("BENCH_accuracy.json", to_json(&rows, &cfg))
                .expect("write BENCH_accuracy.json");
            eprintln!("  wrote BENCH_accuracy.json");
        }
    }
}

// ---------------------------------------------------------------------
// Serving: load-tested query latency over the live TCP server
// ---------------------------------------------------------------------

/// Runs the serving load test (live pipeline ingestion into the shared
/// `EventStore` + a client-thread sweep of mixed TCP queries) and,
/// with `--json`, seeds `BENCH_serving.json` — the third benchmark
/// trajectory next to throughput and accuracy.
fn serving(opts: Opts, json: bool) {
    use rfid_bench::serving::{run_serving, to_json, ServingConfig};

    let mut r = Report::new(
        "serving",
        "Query serving under load: live ingestion + N TCP clients, mixed query workload",
    );
    let sweep_baseline = rfid_obs::global().snapshot();
    let cfg = ServingConfig::standard(opts.quick);
    r.line(&format!(
        "scenario endurance_trace({}, {}, 99), {} particles/object; pull clients issue >= {} \
         mixed queries (current/snapshot/trail/containment/delta) while ingestion streams; \
         mixed rows hold SUBSCRIBE ALL on {:.0}% of connections",
        cfg.objects,
        cfg.rounds,
        cfg.particles,
        cfg.min_queries_per_client,
        cfg.subscriber_share * 100.0,
    ));
    let rows = run_serving(&cfg);

    let mut t = Table::new(vec![
        "mode",
        "clients",
        "subs",
        "queries",
        "errors",
        "queries/s",
        "p50 (us)",
        "p95 (us)",
        "p99 (us)",
        "push p50 (us)",
        "push p95 (us)",
        "push p99 (us)",
        "pushes",
        "lagged",
        "ingest epochs",
        "ingest readings/s",
    ]);
    for row in &rows {
        t.row(vec![
            row.mode.to_string(),
            row.clients.to_string(),
            row.subscribers.to_string(),
            row.queries.to_string(),
            row.errors.to_string(),
            format!("{:.0}", row.queries_per_sec),
            format!("{:.0}", row.p50_us),
            format!("{:.0}", row.p95_us),
            format!("{:.0}", row.p99_us),
            format!("{:.0}", row.push_p50_us),
            format!("{:.0}", row.push_p95_us),
            format!("{:.0}", row.push_p99_us),
            row.push_frames.to_string(),
            row.lagged_frames.to_string(),
            row.ingest_epochs.to_string(),
            format!("{:.0}", row.ingest_readings_per_sec),
        ]);
    }
    r.table(&t);
    // registry vs legacy: the server-side registry must count exactly
    // the queries the client threads measured, the stored events the
    // store reports, and the subscriptions taken out — per row
    let mut disagreements: Vec<String> = Vec::new();
    for row in &rows {
        let mut check = |what: &str, reg: u64, legacy: u64| {
            if reg != legacy {
                disagreements.push(format!(
                    "[{} c={}] {what}: registry {reg} != legacy {legacy}",
                    row.mode, row.clients
                ));
            }
        };
        check("queries", row.registry_queries, row.queries);
        check(
            "subscribes",
            row.registry_subscribes,
            row.subscribers as u64,
        );
        check("store events", row.registry_store_events, row.store_events);
        // delivery counters bound (never equal) the client view: frames
        // still queued at shutdown are counted but never received
        if row.registry_delivered < row.push_frames {
            disagreements.push(format!(
                "[{} c={}] hub delivered {} < frames received {}",
                row.mode, row.clients, row.registry_delivered, row.push_frames
            ));
        }
        if row.registry_lagged < row.lagged_frames {
            disagreements.push(format!(
                "[{} c={}] hub lagged runs {} < LAGGED frames received {}",
                row.mode, row.clients, row.registry_lagged, row.lagged_frames
            ));
        }
    }
    r.line(&if disagreements.is_empty() {
        format!(
            "registry vs legacy: exact agreement on all {} sweep rows (server verb-histogram \
             samples == client query counts; store/hub counters consistent)",
            rows.len()
        )
    } else {
        format!(
            "# WARNING: registry/legacy disagreement: {}",
            disagreements.join(" | ")
        )
    });
    r.line("# queries run against the store *while* the pipeline writes it; pull latency");
    r.line("# is measured end-to-end over the wire (connect once, then frame per query).");
    r.line("# push latency joins subscriber receive instants against the hub commit log");
    r.line("# on the arrival epoch: location-change commit -> subscriber socket read.");
    r.finish();

    if json {
        let sweep_metrics = rfid_obs::global().snapshot().diff(&sweep_baseline);
        std::fs::write("BENCH_serving.json", to_json(&rows, &cfg, &sweep_metrics))
            .expect("write BENCH_serving.json");
        eprintln!("  wrote BENCH_serving.json");
    }
}

// ---------------------------------------------------------------------
// Recovery: crash-recovery timings on the canonical scenarios
// ---------------------------------------------------------------------

/// Kills each canonical scenario's durable run mid-trace (in-process),
/// recovers it, and reports what recovery cost and that the resumed
/// event stream is bit-identical to an uninterrupted run. With
/// `--json`, seeds `BENCH_recovery.json` — the durability trajectory
/// next to throughput, accuracy, and serving.
fn recovery(opts: Opts, json: bool) {
    use rfid_bench::fault::FaultPlan;
    use rfid_bench::recovery::{
        canonical_scenario, reference_digest, resume, run_fresh, DurableRunOpts,
    };

    let mut r = Report::new(
        "recovery",
        "Crash recovery: kill mid-trace, recover from checkpoint + log, resume to digest equality",
    );
    let scenarios: &[&str] = if opts.quick {
        &["tiny", "small_warehouse"]
    } else {
        &["small_warehouse", "low_read_rate", "moving_object"]
    };

    struct Row {
        scenario: String,
        epochs: u64,
        crash_epoch: u64,
        checkpoint_every: u64,
        resumed_from: Option<u64>,
        replayed_events: usize,
        recover_ms: f64,
        resume_ms: f64,
        full_ms: f64,
        digest_match: bool,
    }
    let mut rows: Vec<Row> = Vec::new();

    for name in scenarios {
        let (sc, cfg) = canonical_scenario(name).expect("canonical scenario");
        let golden = reference_digest(&sc, &cfg);
        let last = sc
            .trace
            .epoch_batches()
            .last()
            .expect("non-empty trace")
            .epoch
            .0;
        let run_opts = DurableRunOpts {
            // several checkpoints per trace regardless of its length
            checkpoint_every: (last / 8).max(1),
            ..DurableRunOpts::default()
        };
        let base =
            std::env::temp_dir().join(format!("rfid-recovery-bench-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);

        // the uninterrupted durable run: the wall-clock baseline
        let full = run_fresh(&sc, &cfg, &base.join("full"), &run_opts, None).expect("full run");

        // the kill-and-restart cycle
        let crash_epoch = last / 2;
        let dir = base.join("crash");
        let crashed = run_fresh(
            &sc,
            &cfg,
            &dir,
            &run_opts,
            Some(FaultPlan::KillAtEpoch(crash_epoch)),
        )
        .expect("crashed run");
        assert!(!crashed.completed, "kill epoch must be inside the trace");
        let rec = resume(&sc, &cfg, &dir, &run_opts, None).expect("recovery");

        let digest_match = rec.run.completed && rec.run.digest == golden && full.digest == golden;
        eprintln!(
            "  [{name}] crash at {crash_epoch}/{last}: recovered in {:.1} ms \
             (from {:?}, {} events replayed), resumed in {:.1} ms — digest {}",
            rec.recover_elapsed.as_secs_f64() * 1e3,
            rec.resumed_from,
            rec.replayed_events,
            rec.run.drive_elapsed.as_secs_f64() * 1e3,
            if digest_match { "MATCH" } else { "MISMATCH" },
        );
        rows.push(Row {
            scenario: name.to_string(),
            epochs: last + 1,
            crash_epoch,
            checkpoint_every: run_opts.checkpoint_every,
            resumed_from: rec.resumed_from,
            replayed_events: rec.replayed_events,
            recover_ms: rec.recover_elapsed.as_secs_f64() * 1e3,
            resume_ms: rec.run.drive_elapsed.as_secs_f64() * 1e3,
            full_ms: full.drive_elapsed.as_secs_f64() * 1e3,
            digest_match,
        });
        let _ = std::fs::remove_dir_all(&base);
    }

    let mut t = Table::new(vec![
        "scenario",
        "epochs",
        "crash epoch",
        "ckpt every",
        "resumed from",
        "replayed events",
        "recover (ms)",
        "resume (ms)",
        "full run (ms)",
        "digest",
    ]);
    for row in &rows {
        t.row(vec![
            row.scenario.clone(),
            row.epochs.to_string(),
            row.crash_epoch.to_string(),
            row.checkpoint_every.to_string(),
            row.resumed_from
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
            row.replayed_events.to_string(),
            f2(row.recover_ms),
            f2(row.resume_ms),
            f2(row.full_ms),
            if row.digest_match {
                "match"
            } else {
                "MISMATCH"
            }
            .to_string(),
        ]);
    }
    r.table(&t);
    r.line("# recover = segment-log open + truncation + replay + checkpoint load;");
    r.line("# resume = re-processing the batches after the checkpoint. Digest 'match'");
    r.line("# asserts the recovered event stream is bit-identical to an uninterrupted");
    r.line("# run (the determinism contract is what makes replay-from-checkpoint safe).");
    r.finish();

    if json {
        let mut s = String::from("{\n  \"crash\": \"kill at last_epoch/2, in-process\",\n");
        s.push_str("  \"rows\": [\n");
        for (i, row) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"epochs\": {}, \"crash_epoch\": {}, \
                 \"checkpoint_every\": {}, \"resumed_from\": {}, \"replayed_events\": {}, \
                 \"recover_ms\": {:.3}, \"resume_ms\": {:.3}, \"full_ms\": {:.3}, \
                 \"digest_match\": {}}}{}\n",
                row.scenario,
                row.epochs,
                row.crash_epoch,
                row.checkpoint_every,
                row.resumed_from
                    .map_or_else(|| "null".to_string(), |e| e.to_string()),
                row.replayed_events,
                row.recover_ms,
                row.resume_ms,
                row.full_ms,
                row.digest_match,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        std::fs::write("BENCH_recovery.json", &s).expect("write BENCH_recovery.json");
        eprintln!("  wrote BENCH_recovery.json");
    }
}

// ---------------------------------------------------------------------
// Report: the committed BENCH_*.json trajectories as markdown
// ---------------------------------------------------------------------

/// Renders a `rows` array of a parsed BENCH document as a markdown
/// table using `(header, key, decimals)` column specs.
fn md_table_from(doc: &rfid_bench::json::Json, spec: &[(&str, &str, usize)]) -> Option<Table> {
    let rows = doc.get("rows")?.as_arr()?;
    let mut t = Table::new(spec.iter().map(|(h, _, _)| h.to_string()).collect());
    for row in rows {
        t.row(
            spec.iter()
                .map(|(_, key, decimals)| {
                    row.get(key)
                        .map(|v| v.cell(*decimals))
                        .unwrap_or_else(|| "-".to_string())
                })
                .collect(),
        );
    }
    Some(t)
}

/// Renders every committed `BENCH_*.json` as a markdown table — the
/// single source for the tables pasted into EXPERIMENTS.md (ROADMAP
/// open item: port bench numbers into tables via the experiments bin).
fn report() {
    use rfid_bench::json::Json;

    let mut r = Report::new("report", "Committed benchmark trajectories (markdown)");
    let mut render = |path: &str, title: &str, spec: &[(&str, &str, usize)]| {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                r.line(&format!(
                    "### {title}\n\n`{path}` not found ({e}) — skipped.\n"
                ));
                return;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                r.line(&format!("### {title}\n\n`{path}` failed to parse: {e}\n"));
                return;
            }
        };
        match md_table_from(&doc, spec) {
            Some(t) => {
                r.line(&format!("### {title} (`{path}`)\n"));
                r.line(&t.render_markdown());
            }
            None => r.line(&format!("### {title}\n\n`{path}` has no rows array.\n")),
        }
        // documents written since the observability layer embed the
        // registry dump of the run that produced them; older committed
        // files simply lack the member and are skipped
        if let Some(metrics) = doc.get("metrics").and_then(|v| v.as_obj()) {
            if !metrics.is_empty() {
                let mut mt = Table::new(vec!["metric", "value"]);
                for (name, value) in metrics {
                    mt.row(vec![name.clone(), value.cell(0)]);
                }
                r.line(&format!(
                    "#### {title}: registry snapshot of the recorded run\n"
                ));
                r.line(&mt.render_markdown());
            }
        }
    };

    render(
        "BENCH_throughput.json",
        "Throughput",
        &[
            ("variant", "variant", 0),
            ("objects", "objects", 0),
            ("workers", "worker_threads", 0),
            ("shards", "num_shards", 0),
            ("rounds", "rounds", 0),
            ("epochs", "epochs", 0),
            ("readings/s", "readings_per_sec", 1),
            ("ms/reading", "ms_per_reading", 4),
            ("memory (MB)", "memory_mb", 2),
            ("ingest µs", "ingest_us", 0),
            ("infer µs", "infer_us", 0),
            ("emit µs", "emit_us", 0),
            ("sync hw", "sync_pending_high_water", 0),
            ("batch hw", "batch_buffer_high_water", 0),
        ],
    );
    render(
        "BENCH_accuracy.json",
        "Accuracy",
        &[
            ("scenario", "scenario", 0),
            ("system", "system", 0),
            ("events", "events", 0),
            ("precision", "precision", 3),
            ("recall", "recall", 3),
            ("F1", "f1", 3),
            ("mean XY (ft)", "mean_xy_ft", 2),
            ("containment", "containment", 3),
            ("moves det.", "moves_detected", 0),
            ("moves total", "moves_total", 0),
            ("delay (ep)", "mean_change_delay_epochs", 2),
        ],
    );
    render(
        "BENCH_serving.json",
        "Serving",
        &[
            ("mode", "mode", 0),
            ("clients", "clients", 0),
            ("subs", "subscribers", 0),
            ("queries", "queries", 0),
            ("errors", "errors", 0),
            ("queries/s", "queries_per_sec", 0),
            ("p50 (us)", "p50_us", 0),
            ("p95 (us)", "p95_us", 0),
            ("p99 (us)", "p99_us", 0),
            ("push p50 (us)", "push_p50_us", 0),
            ("push p95 (us)", "push_p95_us", 0),
            ("push p99 (us)", "push_p99_us", 0),
            ("pushes", "push_frames", 0),
            ("lagged", "lagged_frames", 0),
            ("ingest epochs", "ingest_epochs", 0),
            ("ingest readings/s", "ingest_readings_per_sec", 0),
        ],
    );
    render(
        "BENCH_recovery.json",
        "Recovery",
        &[
            ("scenario", "scenario", 0),
            ("epochs", "epochs", 0),
            ("crash epoch", "crash_epoch", 0),
            ("ckpt every", "checkpoint_every", 0),
            ("resumed from", "resumed_from", 0),
            ("replayed events", "replayed_events", 0),
            ("recover (ms)", "recover_ms", 2),
            ("resume (ms)", "resume_ms", 2),
            ("full run (ms)", "full_ms", 2),
            ("digest match", "digest_match", 0),
        ],
    );
    r.finish();
}

// ---------------------------------------------------------------------
// Fig. 6(b): lab table vs SMURF and uniform
// ---------------------------------------------------------------------

fn fig6b_lab_table(opts: Opts) {
    let mut r = Report::new(
        "fig6b_lab_table",
        "Fig 6(b): simulated lab deployment — our system vs SMURF (improved) vs uniform",
    );
    let lab = LabDeployment::standard();
    let particles = if opts.quick { 400 } else { 1500 };

    // learn the sensor + noise parameters once from a 500 ms trace
    let train = lab.generate(500, 4242);
    let mut init = ModelParams::default_warehouse();
    init.sensor = SensorParams {
        a: [2.0, -0.2, -0.05],
        b: [-0.1, -0.5],
    };
    let em_cfg = EmConfig {
        iterations: if opts.quick { 2 } else { 4 },
        ..EmConfig::default()
    };
    let lab_prior = lab.prior();
    let learned = calibrate(
        &train.epoch_batches(),
        &train.shelf_tags,
        &lab_prior,
        init,
        &em_cfg,
    )
    .params;
    // the baselines' sampling radius: the *usable* read range (where
    // the learned read rate is still substantial), not the faint tail
    let read_range = LogisticSensorModel::new(learned.sensor).detection_range(0.2);
    r.line(&format!(
        "learned read range: {:.2} ft; learned sensing bias (x, y) = ({:.2}, {:.2})",
        read_range, learned.sensing.mu.x, learned.sensing.mu.y
    ));

    let timeouts: &[u32] = if opts.quick { &[500] } else { &[250, 500, 750] };
    let mut t = Table::new(vec![
        "timeout (shelf)",
        "ours X",
        "ours Y",
        "ours XY",
        "SMURF X",
        "SMURF Y",
        "SMURF XY",
        "unif X",
        "unif Y",
        "unif XY",
    ]);
    let mut ours_sum = 0.0;
    let mut smurf_sum = 0.0;
    let mut count = 0.0;
    for &small in &[true, false] {
        for &timeout in timeouts {
            let trace = lab.generate(timeout, 5000 + timeout as u64 + small as u64);
            let batches = trace.epoch_batches();
            let shelves = vec![lab.imagined_shelf(0, small), lab.imagined_shelf(1, small)];

            let ours = run_engine_variant(
                &batches,
                &lab_prior,
                &trace.shelf_tags,
                EngineVariant::Factored,
                InferenceSensor::Logistic(learned.sensor),
                learned,
                particles,
                default_report_delay(),
            );
            let smurf =
                run_baseline_smurf(&batches, shelves.clone(), read_range, &trace.shelf_tags);
            let unif = run_baseline_uniform(
                &batches,
                shelves,
                read_range,
                &trace.shelf_tags,
                13 + timeout as u64,
            );
            let so = score(&ours.events, &trace.truth);
            let ss = score(&smurf.events, &trace.truth);
            let su = score(&unif.events, &trace.truth);
            ours_sum += so.mean_xy;
            smurf_sum += ss.mean_xy;
            count += 1.0;
            t.row(vec![
                format!("{timeout} ({})", if small { "SS" } else { "LS" }),
                f2(so.mean_x),
                f2(so.mean_y),
                f2(so.mean_xy),
                f2(ss.mean_x),
                f2(ss.mean_y),
                f2(ss.mean_xy),
                f2(su.mean_x),
                f2(su.mean_y),
                f2(su.mean_xy),
            ]);
        }
    }
    r.table(&t);
    let reduction = 100.0 * (1.0 - (ours_sum / count) / (smurf_sum / count));
    r.line(&format!(
        "average error reduction of our system vs SMURF: {reduction:.0}%  (paper: 49%)"
    ));
    r.line("# paper: ours 0.39-0.54 ft; SMURF 1.3-1.7x ours on the small shelf and");
    r.line("# >2.7x on the large shelf (it cannot correct dead-reckoning drift,");
    r.line("# and its x error is pinned at half the shelf depth).");
    r.finish();
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

fn ablation_init(opts: Opts) {
    let mut r = Report::new(
        "ablation_init",
        "Ablation: initialization-cone range overestimate (sensor-model-based init)",
    );
    let particles = if opts.quick { 300 } else { 800 };
    let sc = scenario::small_trace(12, 4, 888);
    let batches = sc.trace.epoch_batches();
    let mut t = Table::new(vec!["range factor", "error XY (ft)"]);
    for &factor in &[1.0f64, 1.25, 1.75, 2.5] {
        let mut cfg = rfid_core::FilterConfig::factored_default();
        cfg.particles_per_object = particles;
        cfg.init_range_overestimate = factor;
        cfg.report_delay_epochs = default_report_delay();
        let model = rfid_model::JointModel::with_sensor(
            ConeSensor::paper_default(),
            ModelParams::default_warehouse(),
        );
        let mut engine = rfid_core::InferenceEngine::new(
            model,
            sc.layout.clone(),
            sc.trace.shelf_tags.clone(),
            cfg,
        )
        .expect("valid");
        let events = rfid_core::engine::run_engine(&mut engine, &batches);
        t.row(vec![
            f2(factor),
            f2(score(&events, &sc.trace.truth).mean_xy),
        ]);
    }
    r.table(&t);
    r.line("# the paper chooses the cone as 'an overestimate of the true range';");
    r.line("# too tight misses the true location, too wide wastes particles.");
    r.finish();
}

fn ablation_particles(opts: Opts) {
    let mut r = Report::new(
        "ablation_particles",
        "Ablation: particles per object — accuracy/cost frontier",
    );
    let sc = scenario::small_trace(12, 4, 999);
    let batches = sc.trace.epoch_batches();
    let counts: &[usize] = if opts.quick {
        &[10, 100, 1000]
    } else {
        &[10, 50, 100, 300, 1000, 3000]
    };
    let mut t = Table::new(vec!["particles/object", "error XY (ft)", "ms/reading"]);
    for &k in counts {
        let out = run_engine_variant(
            &batches,
            &sc.layout,
            &sc.trace.shelf_tags,
            EngineVariant::Factored,
            InferenceSensor::TrueCone(ConeSensor::paper_default()),
            ModelParams::default_warehouse(),
            k,
            default_report_delay(),
        );
        t.row(vec![
            k.to_string(),
            f2(score(&out.events, &sc.trace.truth).mean_xy),
            f3(out.ms_per_reading()),
        ]);
    }
    r.table(&t);
    r.line("# diminishing accuracy returns past ~1000 particles/object (the");
    r.line("# paper's operating point), while cost keeps growing linearly.");
    r.finish();
}

fn ablation_resample(opts: Opts) {
    let mut r = Report::new(
        "ablation_resample",
        "Ablation: resampling threshold (maintained factored weights vs resample-always)",
    );
    let particles = if opts.quick { 300 } else { 800 };
    let sc = scenario::small_trace(12, 4, 1111);
    let batches = sc.trace.epoch_batches();
    let mut t = Table::new(vec![
        "ESS threshold",
        "error XY (ft)",
        "object resamples",
        "ms/reading",
    ]);
    for &frac in &[0.1f64, 0.3, 0.5, 0.9, 1.0] {
        let mut cfg = rfid_core::FilterConfig::factored_default();
        cfg.particles_per_object = particles;
        cfg.resample_ess_frac = frac;
        cfg.report_delay_epochs = default_report_delay();
        let model = rfid_model::JointModel::with_sensor(
            ConeSensor::paper_default(),
            ModelParams::default_warehouse(),
        );
        let mut engine = rfid_core::InferenceEngine::new(
            model,
            sc.layout.clone(),
            sc.trace.shelf_tags.clone(),
            cfg,
        )
        .expect("valid");
        let start = std::time::Instant::now();
        let events = rfid_core::engine::run_engine(&mut engine, &batches);
        let elapsed = start.elapsed();
        let readings: usize = batches.iter().map(|b| b.readings.len()).sum();
        t.row(vec![
            f2(frac),
            f2(score(&events, &sc.trace.truth).mean_xy),
            engine.stats().object_resamples.to_string(),
            f3(elapsed.as_secs_f64() * 1e3 / readings as f64),
        ]);
    }
    r.table(&t);
    r.line("# threshold 1.0 resamples every step (the Ng et al. scheme the paper");
    r.line("# contrasts with); maintained factored weights resample far less often");
    r.line("# at equal or better accuracy.");
    r.finish();
}
