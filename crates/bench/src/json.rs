//! A minimal JSON reader for the committed `BENCH_*.json` documents.
//!
//! The workspace has no registry access, so no serde: this is a small
//! recursive-descent parser covering exactly the JSON this repo's own
//! writers emit (objects, arrays, strings with basic escapes, f64
//! numbers, booleans, null). It exists so `experiments -- report` can
//! render the committed benchmark trajectories as markdown tables
//! without hand-maintaining them.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Ordered map (insertion order is not preserved; reports sort by
    /// key anyway via `BTreeMap`).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map (key-sorted).
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Renders a member for a table cell: strings verbatim, numbers
    /// with exactly `decimals` places (0 renders whole numbers without
    /// a fraction), null as "-".
    pub fn cell(&self, decimals: usize) -> String {
        match self {
            Json::Null => "-".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) if decimals == 0 && n.fract() == 0.0 && n.abs() < 1e15 => {
                format!("{}", *n as i64)
            }
            Json::Num(n) => format!("{n:.decimals$}"),
            Json::Str(s) => s.clone(),
            Json::Arr(_) | Json::Obj(_) => "…".to_string(),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            ch as char,
            *pos,
            b.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&c| c as char),
            *pos
        )),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("dangling escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'u' => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("short \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        *pos += 4;
                        char::from_u32(code).ok_or("bad \\u codepoint")?
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                });
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar (the input is valid UTF-8
                // because it came in as &str)
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("empty tail")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_document_shape() {
        let doc = r#"{
          "scenario": "endurance_trace(n, rounds, 99)",
          "particles_per_object": 200,
          "nested": {"a": [1, 2.5, -3e2], "b": null, "c": true},
          "rows": [
            {"variant": "Full", "readings_per_sec": 10744.9},
            {"variant": "Factored", "readings_per_sec": 4147.0}
          ]
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("scenario").unwrap().as_str(),
            Some("endurance_trace(n, rounds, 99)")
        );
        assert_eq!(v.get("particles_per_object").unwrap().as_f64(), Some(200.0));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].get("readings_per_sec").unwrap().as_f64(),
            Some(4147.0)
        );
        let nested = v.get("nested").unwrap();
        assert_eq!(
            nested.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(nested.get("b"), Some(&Json::Null));
        assert_eq!(nested.get("c"), Some(&Json::Bool(true)));
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(Json::Num(3.0).cell(0), "3");
        assert_eq!(Json::Num(3.6).cell(0), "4");
        assert_eq!(Json::Num(3.0).cell(3), "3.000");
        assert_eq!(Json::Num(1.23456).cell(2), "1.23");
        assert_eq!(Json::Null.cell(2), "-");
        assert_eq!(Json::Str("x".into()).cell(2), "x");
    }
}
