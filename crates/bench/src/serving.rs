//! The serving load generator: replays a scenario through the engine
//! pipeline into a shared `EventStore` **while** client threads hammer
//! the TCP query server, measuring end-to-end (over-the-wire) latency
//! percentiles and throughput — the third benchmark trajectory next to
//! throughput and accuracy.
//!
//! Two sweep families share one report:
//! - **pull** rows (1/2/4 clients) keep the PR-5 query-latency
//!   envelope comparable across protocol generations;
//! - **mixed** rows scale to hundreds of concurrent connections where
//!   ~25% hold `SUBSCRIBE ALL` subscriptions and the rest rotate the
//!   five pull query kinds. Push fan-out latency is measured by
//!   joining each subscriber's receive timestamps against the hub's
//!   commit log on the arrival epoch.
//!
//! `experiments -- serving --json` writes the committed
//! `BENCH_serving.json`; each row is one sweep point.

use crate::runner::RunOpts;
use rand::{rngs::StdRng, Rng, SeedableRng};
use rfid_core::{FilterConfig, InferenceEngine};
use rfid_model::sensor::ConeSensor;
use rfid_model::{JointModel, ModelParams};
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{
    serve_with, Frame, HubConfig, Query, QueryClient, QueryResponse, ServerConfig,
    SubscriptionFilter, SubscriptionHub,
};
use rfid_sim::scenario;
use rfid_stream::pipeline::sinks::StoreSink;
use rfid_stream::pipeline::PipelineStats;
use rfid_stream::{Epoch, Pipeline, StreamItem, TagId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Load-test knobs.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Pull-only client counts to sweep (one result row each); kept
    /// small so the latency envelope stays comparable to the
    /// thread-per-connection baseline.
    pub clients_sweep: Vec<usize>,
    /// Total connection counts for the mixed pull+subscribe sweep.
    pub mixed_sweep: Vec<usize>,
    /// Fraction of mixed-row connections that hold a `SUBSCRIBE ALL`
    /// subscription instead of issuing pull queries.
    pub subscriber_share: f64,
    /// Objects in the ingested warehouse scenario.
    pub objects: usize,
    /// Scan rounds of the ingested trace (ingestion wall time scales
    /// with this, and clients keep querying as long as it runs).
    pub rounds: usize,
    /// Engine particles per object.
    pub particles: usize,
    /// Every pull client issues at least this many queries, even if
    /// ingestion finishes first.
    pub min_queries_per_client: usize,
    /// The per-client floor for mixed rows (hundreds of clients share
    /// the server, so the floor is lower to bound the run).
    pub mixed_min_queries: usize,
    /// Execution knobs for the ingestion engine.
    pub opts: RunOpts,
}

impl ServingConfig {
    /// The committed-baseline operating point (`quick` shrinks it for
    /// CI smoke).
    pub fn standard(quick: bool) -> Self {
        Self {
            clients_sweep: if quick { vec![1, 2] } else { vec![1, 2, 4] },
            mixed_sweep: if quick { vec![16] } else { vec![64, 256] },
            subscriber_share: 0.25,
            objects: if quick { 60 } else { 100 },
            rounds: if quick { 2 } else { 4 },
            particles: if quick { 100 } else { 200 },
            min_queries_per_client: if quick { 200 } else { 1000 },
            mixed_min_queries: if quick { 50 } else { 100 },
            opts: RunOpts::new(if quick { 100 } else { 200 }, 60),
        }
    }
}

/// One sweep row: `clients` concurrent connections against the live
/// server, of which `subscribers` hold push subscriptions.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// `"pull"` or `"mixed"`.
    pub mode: &'static str,
    pub clients: usize,
    pub subscribers: usize,
    /// Total queries answered across all pull threads.
    pub queries: u64,
    /// `ERR` responses (0 expected with unlimited retention).
    pub errors: u64,
    /// Wall time of the query phase (first connect to last response).
    pub elapsed_s: f64,
    pub queries_per_sec: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
    /// Push-side counters (0 for pull rows).
    pub push_frames: u64,
    pub push_rows: u64,
    pub lagged_frames: u64,
    pub dropped_rows: u64,
    /// Commit-to-receive fan-out latency over all (subscriber, frame)
    /// pairs, joined on the arrival epoch.
    pub push_p50_us: f64,
    pub push_p95_us: f64,
    pub push_p99_us: f64,
    pub push_max_us: f64,
    /// Ingestion-side counters of the same run.
    pub ingest_epochs: u64,
    pub ingest_events: u64,
    pub ingest_elapsed_s: f64,
    pub ingest_readings_per_sec: f64,
    /// Store size at the end of the run.
    pub store_events: u64,
    pub store_segments: usize,
    /// Registry-side counts of the same run (a global-registry
    /// snapshot diff bracketing the row): the server's verb-histogram
    /// samples over the four pull verbs, its SUBSCRIBE samples, the
    /// store's push counter, and the hub's delivery/overflow counters.
    /// `registry_queries`, `registry_subscribes`, and
    /// `registry_store_events` must equal their client-side
    /// counterparts exactly; `registry_delivered`/`registry_lagged`
    /// bound what subscribers observed (frames still queued at
    /// shutdown are counted but never received).
    pub registry_queries: u64,
    pub registry_subscribes: u64,
    pub registry_store_events: u64,
    pub registry_delivered: u64,
    pub registry_lagged: u64,
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// The mixed query workload: an even rotation over the five pull
/// kinds, with parameters drawn from a per-client deterministic RNG.
fn nth_query(rng: &mut StdRng, i: u64, objects: usize, max_epoch: u64) -> Query {
    let tag = TagId(rng.gen_range(0..objects as u64));
    let epoch = Epoch(rng.gen_range(0..max_epoch.max(1)));
    match i % 5 {
        0 => Query::CurrentLocation(tag),
        1 => Query::SnapshotAt(epoch),
        2 => Query::Trail {
            tag,
            from: Epoch(epoch.0.saturating_sub(100)),
            to: epoch,
        },
        3 => {
            let x0 = rng.gen_range(-2.0..30.0);
            let y0 = rng.gen_range(-2.0..4.0);
            Query::Containment {
                x0,
                y0,
                x1: x0 + 8.0,
                y1: y0 + 4.0,
                epoch,
            }
        }
        _ => Query::SnapshotDelta {
            at: epoch,
            since: Epoch(epoch.0.saturating_sub(50)),
        },
    }
}

/// What one subscriber thread brings home.
struct SubReport {
    /// (arrival epoch, receive instant) per `PUSH` frame.
    received: Vec<(u64, Instant)>,
    push_rows: u64,
    lagged_frames: u64,
    dropped_rows: u64,
}

/// Runs one sweep row: spin up store + server, ingest the scenario on
/// a pipeline thread, hit it from `pull_clients` query threads and
/// `subscribers` push-subscribed connections.
fn run_row(cfg: &ServingConfig, mode: &'static str, clients: usize) -> ServingRow {
    let subscribers = if mode == "mixed" {
        ((clients as f64 * cfg.subscriber_share).round() as usize).clamp(1, clients)
    } else {
        0
    };
    let pull_clients = clients - subscribers;
    let min_q = if mode == "mixed" {
        cfg.mixed_min_queries as u64
    } else {
        cfg.min_queries_per_client as u64
    };

    // brackets the whole row: the registry is process-global, and the
    // rows run sequentially, so this diff isolates the row's activity
    let registry_before = rfid_obs::global().snapshot();

    let sc = scenario::endurance_trace(cfg.objects, cfg.rounds, 99);
    let items: Vec<StreamItem> = sc.trace.stream().collect();
    let epoch_len = sc.trace.epoch_len;
    let max_epoch = items
        .iter()
        .map(|it| match it {
            StreamItem::Reading(r) => r.time,
            StreamItem::Report(r) => r.time,
        })
        .fold(0.0f64, f64::max)
        / epoch_len;
    let max_epoch = max_epoch as u64;
    let readings = items
        .iter()
        .filter(|it| matches!(it, StreamItem::Reading(_)))
        .count();

    let mut fcfg = FilterConfig::full_default();
    fcfg.particles_per_object = cfg.particles;
    fcfg.report_delay_epochs = cfg.opts.report_delay;
    fcfg.worker_threads = cfg.opts.worker_threads;
    fcfg.num_shards = cfg.opts.num_shards;
    let model = JointModel::with_sensor(
        ConeSensor::paper_default(),
        ModelParams::default_warehouse(),
    );
    let engine = InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), fcfg)
        .expect("valid engine config");

    let store = Arc::new(RwLock::new(EventStore::new(StoreConfig::default())));
    let mut hub_cfg = HubConfig::default();
    if subscribers > 0 {
        hub_cfg = hub_cfg.with_commit_log();
    }
    let hub = SubscriptionHub::new(hub_cfg);
    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub.clone(),
        ServerConfig::default(),
    )
    .expect("bind query server");
    let addr = server.addr();
    let done = Arc::new(AtomicBool::new(false));

    // subscribers connect and register before ingestion starts so the
    // commit log and the receive timestamps cover the same stream
    let sub_workers: Vec<_> = (0..subscribers)
        .map(|_| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = QueryClient::connect(addr)
                    .timeout(Duration::from_millis(100))
                    .establish()
                    .expect("connect subscriber");
                client
                    .subscribe(&SubscriptionFilter::All)
                    .expect("subscribe");
                let mut report = SubReport {
                    received: Vec::new(),
                    push_rows: 0,
                    lagged_frames: 0,
                    dropped_rows: 0,
                };
                loop {
                    match client.next_push() {
                        Ok(Frame::Push { epoch, rows, .. }) => {
                            report.received.push((epoch, Instant::now()));
                            report.push_rows += rows.len() as u64;
                        }
                        Ok(Frame::Lagged { dropped, .. }) => {
                            report.lagged_frames += 1;
                            report.dropped_rows += dropped;
                        }
                        Ok(other) => panic!("unexpected frame {other:?}"),
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            if done.load(Ordering::SeqCst) {
                                return report;
                            }
                        }
                        Err(e) => panic!("subscriber read failed: {e}"),
                    }
                }
            })
        })
        .collect();

    // ingestion: the live pipeline writing through the shared lock and
    // committing deltas into the hub
    let ingest = {
        let done = Arc::clone(&done);
        let sink = (StoreSink::new(Arc::clone(&store)), hub.sink());
        std::thread::spawn(move || {
            let mut pipeline = Pipeline::new(epoch_len, engine, sink);
            let start = Instant::now();
            let stats: PipelineStats = pipeline.run_to_completion(&mut items.into_iter());
            let elapsed = start.elapsed();
            done.store(true, Ordering::SeqCst);
            (stats, elapsed)
        })
    };

    let objects = cfg.objects;
    let query_start = Instant::now();
    let workers: Vec<_> = (0..pull_clients)
        .map(|c| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5E21E + c as u64);
                let mut client = QueryClient::connect(addr)
                    .timeout(Duration::from_secs(30))
                    .establish()
                    .expect("connect to query server");
                let mut latencies_us: Vec<f64> = Vec::new();
                let mut errors = 0u64;
                let mut i = 0u64;
                while !done.load(Ordering::SeqCst) || i < min_q {
                    let q = nth_query(&mut rng, i, objects, max_epoch);
                    let t0 = Instant::now();
                    let resp = client.query(&q).expect("query round trip");
                    let dt = t0.elapsed();
                    latencies_us.push(dt.as_secs_f64() * 1e6);
                    if matches!(resp, QueryResponse::Error(_)) {
                        errors += 1;
                    }
                    i += 1;
                }
                (latencies_us, errors)
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::new();
    let mut errors = 0u64;
    for w in workers {
        let (lat, err) = w.join().expect("client thread");
        latencies.extend(lat);
        errors += err;
    }
    let elapsed = query_start.elapsed();
    let (ingest_stats, ingest_elapsed) = ingest.join().expect("ingestion thread");
    let sub_reports: Vec<SubReport> = sub_workers
        .into_iter()
        .map(|w| w.join().expect("subscriber thread"))
        .collect();

    // join receive instants against the hub's commit log on the
    // arrival epoch: commit-to-socket-read fan-out latency
    let commit_at: HashMap<u64, Instant> = hub.commit_log().into_iter().collect();
    let mut push_lat_us: Vec<f64> = Vec::new();
    let mut push_frames = 0u64;
    let mut push_rows = 0u64;
    let mut lagged_frames = 0u64;
    let mut dropped_rows = 0u64;
    for r in &sub_reports {
        push_frames += r.received.len() as u64;
        push_rows += r.push_rows;
        lagged_frames += r.lagged_frames;
        dropped_rows += r.dropped_rows;
        for (epoch, at) in &r.received {
            if let Some(committed) = commit_at.get(epoch) {
                push_lat_us.push(at.duration_since(*committed).as_secs_f64() * 1e6);
            }
        }
    }
    push_lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let queries = latencies.len() as u64;
    let elapsed_s = elapsed.as_secs_f64().max(1e-9);
    let store = store.read().expect("store lock");
    let sstats = store.stats();

    // every client joined and the server shut down, so the registry
    // has the row's complete server-side story
    let delta = rfid_obs::global().snapshot().diff(&registry_before);
    let verb_samples = |name: &str| delta.histogram(name).map(|h| h.count).unwrap_or(0);
    let registry_queries = [
        "server_query_us_current",
        "server_query_us_snapshot",
        "server_query_us_trail",
        "server_query_us_contain",
    ]
    .iter()
    .map(|n| verb_samples(n))
    .sum();
    ServingRow {
        mode,
        clients,
        subscribers,
        queries,
        errors,
        elapsed_s,
        queries_per_sec: queries as f64 / elapsed_s,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0.0),
        push_frames,
        push_rows,
        lagged_frames,
        dropped_rows,
        push_p50_us: percentile(&push_lat_us, 0.50),
        push_p95_us: percentile(&push_lat_us, 0.95),
        push_p99_us: percentile(&push_lat_us, 0.99),
        push_max_us: push_lat_us.last().copied().unwrap_or(0.0),
        ingest_epochs: ingest_stats.epochs,
        ingest_events: ingest_stats.events,
        ingest_elapsed_s: ingest_elapsed.as_secs_f64(),
        ingest_readings_per_sec: readings as f64 / ingest_elapsed.as_secs_f64().max(1e-9),
        store_events: sstats.events_live + sstats.events_compacted,
        store_segments: sstats.segments,
        registry_queries,
        registry_subscribes: verb_samples("server_query_us_subscribe"),
        registry_store_events: delta.counter("store_events_total"),
        registry_delivered: delta.counter("hub_delivered_total"),
        registry_lagged: delta.counter("hub_lagged_total"),
    }
}

/// Runs the pull sweep, then the mixed pull+subscribe sweep.
pub fn run_serving(cfg: &ServingConfig) -> Vec<ServingRow> {
    let points = cfg
        .clients_sweep
        .iter()
        .map(|&c| ("pull", c))
        .chain(cfg.mixed_sweep.iter().map(|&c| ("mixed", c)));
    points
        .map(|(mode, clients)| {
            let row = run_row(cfg, mode, clients);
            eprintln!(
                "  [serving {mode} c={clients} s={}] {} queries, {:.0} q/s, pull p50/p99 \
                 {:.0}/{:.0} us, push p50/p99 {:.0}/{:.0} us, {} pushes, {} lagged \
                 (ingest: {} epochs in {:.2} s)",
                row.subscribers,
                row.queries,
                row.queries_per_sec,
                row.p50_us,
                row.p99_us,
                row.push_p50_us,
                row.push_p99_us,
                row.push_frames,
                row.lagged_frames,
                row.ingest_epochs,
                row.ingest_elapsed_s,
            );
            row
        })
        .collect()
}

/// Serializes sweep rows as the `BENCH_serving.json` document.
/// `metrics` is the registry diff over the whole sweep, embedded so
/// `experiments -- report` can render the snapshot table.
pub fn to_json(rows: &[ServingRow], cfg: &ServingConfig, metrics: &rfid_obs::Snapshot) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"scenario\": \"endurance_trace({}, {}, 99)\",\n  \"particles_per_object\": {},\n  \
         \"protocol\": \"length-prefixed text over TCP, v2 envelopes, sharded non-blocking \
         worker pool\",\n  \
         \"query_mix\": \"current/snapshot/trail/containment/delta rotation\",\n  \
         \"subscriber_share\": {},\n  \
         \"min_queries_per_client\": {},\n",
        cfg.objects, cfg.rounds, cfg.particles, cfg.subscriber_share, cfg.min_queries_per_client,
    ));
    s.push_str(&format!(
        "  \"metrics\": {},\n",
        crate::obs::metrics_json(metrics, "  ")
    ));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"clients\": {}, \"subscribers\": {}, \"queries\": {}, \
             \"errors\": {}, \"elapsed_s\": {:.3}, \
             \"queries_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
             \"p99_us\": {:.1}, \"max_us\": {:.1}, \"push_frames\": {}, \"push_rows\": {}, \
             \"lagged_frames\": {}, \"dropped_rows\": {}, \"push_p50_us\": {:.1}, \
             \"push_p95_us\": {:.1}, \"push_p99_us\": {:.1}, \"push_max_us\": {:.1}, \
             \"ingest_epochs\": {}, \
             \"ingest_events\": {}, \"ingest_elapsed_s\": {:.3}, \
             \"ingest_readings_per_sec\": {:.1}, \"store_events\": {}, \
             \"store_segments\": {}, \"registry_queries\": {}, \
             \"registry_subscribes\": {}, \"registry_store_events\": {}, \
             \"registry_delivered\": {}, \"registry_lagged\": {}}}{}\n",
            r.mode,
            r.clients,
            r.subscribers,
            r.queries,
            r.errors,
            r.elapsed_s,
            r.queries_per_sec,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.max_us,
            r.push_frames,
            r.push_rows,
            r.lagged_frames,
            r.dropped_rows,
            r.push_p50_us,
            r.push_p95_us,
            r.push_p99_us,
            r.push_max_us,
            r.ingest_epochs,
            r.ingest_events,
            r.ingest_elapsed_s,
            r.ingest_readings_per_sec,
            r.store_events,
            r.store_segments,
            r.registry_queries,
            r.registry_subscribes,
            r.registry_store_events,
            r.registry_delivered,
            r.registry_lagged,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sorted_positions() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&lat, 0.50), 51.0);
        assert_eq!(percentile(&lat, 0.99), 99.0);
        assert_eq!(percentile(&lat, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn query_mix_rotates_all_kinds() {
        let mut rng = StdRng::seed_from_u64(7);
        let kinds: Vec<u8> = (0..10u64)
            .map(|i| match nth_query(&mut rng, i, 10, 100) {
                Query::CurrentLocation(_) => 0,
                Query::SnapshotAt(_) => 1,
                Query::Trail { .. } => 2,
                Query::Containment { .. } => 3,
                Query::SnapshotDelta { .. } => 4,
            })
            .collect();
        assert_eq!(kinds, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn delta_queries_never_invert_their_window() {
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..50u64 {
            if let Query::SnapshotDelta { at, since } = nth_query(&mut rng, i * 5 + 4, 10, 400) {
                assert!(since.0 <= at.0, "since {since:?} must not pass at {at:?}");
            } else {
                panic!("rotation slot 4 must be a delta query");
            }
        }
    }

    #[test]
    fn json_document_has_the_gated_fields() {
        let rows = vec![ServingRow {
            mode: "mixed",
            clients: 8,
            subscribers: 2,
            queries: 100,
            errors: 0,
            elapsed_s: 1.0,
            queries_per_sec: 100.0,
            p50_us: 50.0,
            p95_us: 95.0,
            p99_us: 99.0,
            max_us: 120.0,
            push_frames: 40,
            push_rows: 400,
            lagged_frames: 0,
            dropped_rows: 0,
            push_p50_us: 30.0,
            push_p95_us: 80.0,
            push_p99_us: 90.0,
            push_max_us: 100.0,
            ingest_epochs: 10,
            ingest_events: 20,
            ingest_elapsed_s: 0.5,
            ingest_readings_per_sec: 1000.0,
            store_events: 20,
            store_segments: 1,
            registry_queries: 100,
            registry_subscribes: 2,
            registry_store_events: 20,
            registry_delivered: 40,
            registry_lagged: 0,
        }];
        let reg = rfid_obs::Registry::new();
        reg.counter("store_events_total").add(20);
        let doc = to_json(&rows, &ServingConfig::standard(true), &reg.snapshot());
        for field in [
            "\"queries_per_sec\"",
            "\"p50_us\"",
            "\"p95_us\"",
            "\"p99_us\"",
            "\"subscribers\"",
            "\"push_p50_us\"",
            "\"push_p95_us\"",
            "\"push_p99_us\"",
            "\"lagged_frames\"",
            "\"registry_queries\"",
        ] {
            assert!(doc.contains(field), "missing {field}");
        }
        // the document parses with the in-tree reader
        let parsed = crate::json::Json::parse(&doc).unwrap();
        let row = &parsed.get("rows").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("p99_us").unwrap().as_f64(), Some(99.0));
        assert_eq!(row.get("push_p99_us").unwrap().as_f64(), Some(90.0));
        assert_eq!(row.get("registry_queries").unwrap().as_f64(), Some(100.0));
        let metrics = parsed.get("metrics").unwrap();
        assert_eq!(
            metrics.get("store_events_total").unwrap().as_f64(),
            Some(20.0)
        );
    }
}
