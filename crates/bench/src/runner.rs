//! Drivers: run each system over a scenario and collect events, cost,
//! and statistics.

use crate::metrics::ErrorStats;
use rfid_baselines::{Smurf, SmurfConfig, UniformBaseline};
use rfid_core::engine::run_engine;
use rfid_core::{BasicParticleFilter, EngineStats, FilterConfig, InferenceEngine, ReaderMode};
use rfid_geom::Aabb;
use rfid_model::object::LocationPrior;
use rfid_model::sensor::{ConeSensor, ReadRateModel};
use rfid_model::{JointModel, ModelParams};
use rfid_sim::scenario::Scenario;
use rfid_stream::{Epoch, EpochBatch, LocationEvent};
use std::time::{Duration, Instant};

/// Which inference configuration to run (the four curves of
/// Fig. 5(i)/(j)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineVariant {
    /// Basic unfactorized joint filter with this many joint particles.
    Unfactored { particles: usize },
    /// Factored filter (§IV-B).
    Factored,
    /// Factored + spatial index (§IV-C).
    FactoredIndexed,
    /// Factored + index + belief compression (§IV-D).
    Full,
}

impl EngineVariant {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            EngineVariant::Unfactored { .. } => "Unfactorized",
            EngineVariant::Factored => "Factorized",
            EngineVariant::FactoredIndexed => "Factorized+Index",
            EngineVariant::Full => "Factorized+Index+Compression",
        }
    }
}

/// Which sensor model inference runs with.
#[derive(Debug, Clone, Copy)]
pub enum InferenceSensor {
    /// The simulator's ground-truth cone ("True Sensor Model").
    TrueCone(ConeSensor),
    /// A logistic model (learned or default).
    Logistic(rfid_model::SensorParams),
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub events: Vec<LocationEvent>,
    pub elapsed: Duration,
    pub readings: usize,
    pub stats: Option<EngineStats>,
    pub memory_bytes: usize,
}

impl RunOutput {
    /// Milliseconds of processing per raw reading — the Fig. 5(j)
    /// metric.
    pub fn ms_per_reading(&self) -> f64 {
        if self.readings == 0 {
            return f64::NAN;
        }
        self.elapsed.as_secs_f64() * 1e3 / self.readings as f64
    }

    /// Readings processed per second.
    pub fn readings_per_sec(&self) -> f64 {
        self.readings as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Scores the events against a scenario's ground truth.
    pub fn score(&self, sc: &Scenario) -> ErrorStats {
        ErrorStats::score(&self.events, &sc.trace.truth)
    }
}

fn last_epoch(batches: &[EpochBatch]) -> Epoch {
    batches.last().map(|b| b.epoch).unwrap_or(Epoch(0))
}

/// Engine knobs shared by every variant run.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    pub particles_per_object: usize,
    pub report_delay: u64,
    /// Worker threads for the per-object fan-out (`rfid_core::exec`);
    /// events are bit-identical for every value.
    pub worker_threads: usize,
}

impl RunOpts {
    /// Sequential run (the default execution mode).
    pub fn new(particles_per_object: usize, report_delay: u64) -> Self {
        Self {
            particles_per_object,
            report_delay,
            worker_threads: 1,
        }
    }

    /// Same run fanned out across `workers` threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.worker_threads = workers;
        self
    }
}

/// Runs an engine variant with a given sensor choice over prepared
/// batches. `params` supplies the motion/sensing/object components.
#[allow(clippy::too_many_arguments)] // flat experiment knobs
pub fn run_engine_variant<P: LocationPrior + Clone>(
    batches: &[EpochBatch],
    prior: &P,
    shelf_tags: &[(rfid_stream::TagId, rfid_geom::Point3)],
    variant: EngineVariant,
    sensor: InferenceSensor,
    params: ModelParams,
    particles_per_object: usize,
    report_delay: u64,
) -> RunOutput {
    run_engine_variant_opts(
        batches,
        prior,
        shelf_tags,
        variant,
        sensor,
        params,
        RunOpts::new(particles_per_object, report_delay),
    )
}

/// [`run_engine_variant`] with the full option set.
pub fn run_engine_variant_opts<P: LocationPrior + Clone>(
    batches: &[EpochBatch],
    prior: &P,
    shelf_tags: &[(rfid_stream::TagId, rfid_geom::Point3)],
    variant: EngineVariant,
    sensor: InferenceSensor,
    params: ModelParams,
    opts: RunOpts,
) -> RunOutput {
    let mut cfg = match variant {
        EngineVariant::Unfactored { .. } | EngineVariant::Factored => {
            FilterConfig::factored_default()
        }
        EngineVariant::FactoredIndexed => FilterConfig::indexed_default(),
        EngineVariant::Full => FilterConfig::full_default(),
    };
    cfg.particles_per_object = opts.particles_per_object;
    cfg.report_delay_epochs = opts.report_delay;
    cfg.worker_threads = opts.worker_threads;
    let readings: usize = batches.iter().map(|b| b.readings.len()).sum();

    match (variant, sensor) {
        (EngineVariant::Unfactored { particles }, InferenceSensor::TrueCone(c)) => {
            let model = JointModel::with_sensor(c, params);
            run_unfactored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                particles,
                batches,
                readings,
            )
        }
        (EngineVariant::Unfactored { particles }, InferenceSensor::Logistic(sp)) => {
            let mut p = params;
            p.sensor = sp;
            let model = JointModel::new(p);
            run_unfactored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                particles,
                batches,
                readings,
            )
        }
        (_, InferenceSensor::TrueCone(c)) => {
            let model = JointModel::with_sensor(c, params);
            run_factored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                batches,
                readings,
            )
        }
        (_, InferenceSensor::Logistic(sp)) => {
            let mut p = params;
            p.sensor = sp;
            let model = JointModel::new(p);
            run_factored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                batches,
                readings,
            )
        }
    }
}

fn run_factored<P: LocationPrior + Clone, S: ReadRateModel>(
    model: JointModel<S>,
    prior: P,
    shelf_tags: Vec<(rfid_stream::TagId, rfid_geom::Point3)>,
    cfg: FilterConfig,
    batches: &[EpochBatch],
    readings: usize,
) -> RunOutput {
    let mut engine = InferenceEngine::new(model, prior, shelf_tags, cfg).expect("valid config");
    let start = Instant::now();
    let events = run_engine(&mut engine, batches);
    let elapsed = start.elapsed();
    RunOutput {
        events,
        elapsed,
        readings,
        memory_bytes: engine.memory_bytes(),
        stats: Some(*engine.stats()),
    }
}

fn run_unfactored<P: LocationPrior + Clone, S: ReadRateModel>(
    model: JointModel<S>,
    prior: P,
    shelf_tags: Vec<(rfid_stream::TagId, rfid_geom::Point3)>,
    cfg: FilterConfig,
    particles: usize,
    batches: &[EpochBatch],
    readings: usize,
) -> RunOutput {
    let mut filter =
        BasicParticleFilter::new(model, prior, shelf_tags, cfg, particles).expect("valid config");
    let start = Instant::now();
    let mut events = Vec::new();
    for b in batches {
        events.extend(filter.process_batch(b));
    }
    events.extend(filter.finalize(last_epoch(batches)));
    let elapsed = start.elapsed();
    RunOutput {
        events,
        elapsed,
        readings,
        memory_bytes: particles * filter.num_objects() * std::mem::size_of::<rfid_geom::Point3>(),
        stats: None,
    }
}

/// Runs the engine in "motion model Off" mode (reports trusted as
/// truth) — the Fig. 5(g) comparison curve.
pub fn run_motion_off<P: LocationPrior + Clone>(
    batches: &[EpochBatch],
    prior: &P,
    shelf_tags: &[(rfid_stream::TagId, rfid_geom::Point3)],
    sensor: InferenceSensor,
    params: ModelParams,
    particles_per_object: usize,
    report_delay: u64,
) -> RunOutput {
    let mut cfg = FilterConfig::factored_default();
    cfg.reader_mode = ReaderMode::TrustReports;
    cfg.reader_particles = 1;
    cfg.particles_per_object = particles_per_object;
    cfg.report_delay_epochs = report_delay;
    let readings: usize = batches.iter().map(|b| b.readings.len()).sum();
    match sensor {
        InferenceSensor::TrueCone(c) => {
            let model = JointModel::with_sensor(c, params);
            run_factored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                batches,
                readings,
            )
        }
        InferenceSensor::Logistic(sp) => {
            let mut p = params;
            p.sensor = sp;
            let model = JointModel::new(p);
            run_factored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                batches,
                readings,
            )
        }
    }
}

/// Runs the SMURF baseline.
pub fn run_baseline_smurf(
    batches: &[EpochBatch],
    shelves: Vec<Aabb>,
    read_range: f64,
    ignored: &[(rfid_stream::TagId, rfid_geom::Point3)],
) -> RunOutput {
    let readings: usize = batches.iter().map(|b| b.readings.len()).sum();
    let mut smurf = Smurf::new(
        SmurfConfig::new(read_range, shelves),
        ignored.iter().map(|(t, _)| *t),
    );
    let start = Instant::now();
    let mut events = Vec::new();
    for b in batches {
        events.extend(smurf.process_batch(b));
    }
    events.extend(smurf.finalize(last_epoch(batches)));
    RunOutput {
        events,
        elapsed: start.elapsed(),
        readings,
        stats: None,
        memory_bytes: 0,
    }
}

/// Runs the uniform-sampling baseline.
pub fn run_baseline_uniform(
    batches: &[EpochBatch],
    shelves: Vec<Aabb>,
    read_range: f64,
    ignored: &[(rfid_stream::TagId, rfid_geom::Point3)],
    seed: u64,
) -> RunOutput {
    let readings: usize = batches.iter().map(|b| b.readings.len()).sum();
    let mut uni = UniformBaseline::new(read_range, shelves, ignored.iter().map(|(t, _)| *t), seed);
    let start = Instant::now();
    let mut events = Vec::new();
    for b in batches {
        events.extend(uni.process_batch(b));
    }
    events.extend(uni.finalize(last_epoch(batches)));
    RunOutput {
        events,
        elapsed: start.elapsed(),
        readings,
        stats: None,
        memory_bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::scenario;

    #[test]
    fn factored_run_produces_scored_events() {
        let sc = scenario::small_trace(8, 4, 77);
        let out = run_engine_variant(
            &sc.trace.epoch_batches(),
            &sc.layout,
            &sc.trace.shelf_tags,
            EngineVariant::Factored,
            InferenceSensor::TrueCone(ConeSensor::paper_default()),
            ModelParams::default_warehouse(),
            300,
            30,
        );
        assert_eq!(out.events.len(), 8);
        let score = out.score(&sc);
        assert_eq!(score.n, 8);
        assert!(score.mean_xy < 2.0, "error {}", score.mean_xy);
        assert!(out.ms_per_reading() > 0.0);
    }

    #[test]
    fn baselines_run_and_score() {
        let sc = scenario::small_trace(8, 4, 78);
        let shelf = rfid_model::object::LocationPrior::bounds(&sc.layout);
        let batches = sc.trace.epoch_batches();
        let s = run_baseline_smurf(&batches, vec![shelf], 4.0, &sc.trace.shelf_tags);
        let u = run_baseline_uniform(&batches, vec![shelf], 4.0, &sc.trace.shelf_tags, 1);
        assert!(!s.events.is_empty());
        assert!(!u.events.is_empty());
        assert!(s.score(&sc).mean_xy.is_finite());
        assert!(u.score(&sc).mean_xy.is_finite());
    }
}
