//! Drivers: run each system over a scenario and collect events, cost,
//! and statistics.

use crate::metrics::ErrorStats;
use rfid_baselines::{Smurf, SmurfConfig, UniformBaseline};
use rfid_core::engine::run_engine;
use rfid_core::{BasicParticleFilter, EngineStats, FilterConfig, InferenceEngine, ReaderMode};
use rfid_geom::Aabb;
use rfid_model::object::LocationPrior;
use rfid_model::sensor::{ConeSensor, ReadRateModel};
use rfid_model::{JointModel, ModelParams};
use rfid_sim::scenario::Scenario;
use rfid_sim::SimTrace;
use rfid_stream::pipeline::{InferenceStage, Pipeline, PipelineStats};
use rfid_stream::{Epoch, EpochBatch, LocationEvent};
use std::time::{Duration, Instant};

/// Which inference configuration to run (the four curves of
/// Fig. 5(i)/(j)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineVariant {
    /// Basic unfactorized joint filter with this many joint particles.
    Unfactored { particles: usize },
    /// Factored filter (§IV-B).
    Factored,
    /// Factored + spatial index (§IV-C).
    FactoredIndexed,
    /// Factored + index + belief compression (§IV-D).
    Full,
}

impl EngineVariant {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            EngineVariant::Unfactored { .. } => "Unfactorized",
            EngineVariant::Factored => "Factorized",
            EngineVariant::FactoredIndexed => "Factorized+Index",
            EngineVariant::Full => "Factorized+Index+Compression",
        }
    }
}

/// Which sensor model inference runs with.
#[derive(Debug, Clone, Copy)]
pub enum InferenceSensor {
    /// The simulator's ground-truth cone ("True Sensor Model").
    TrueCone(ConeSensor),
    /// A logistic model (learned or default).
    Logistic(rfid_model::SensorParams),
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub events: Vec<LocationEvent>,
    pub elapsed: Duration,
    pub readings: usize,
    pub stats: Option<EngineStats>,
    pub memory_bytes: usize,
    /// Streaming-pipeline counters and buffer high-water marks
    /// (`None` for the legacy batch paths).
    pub pipeline: Option<PipelineStats>,
}

impl RunOutput {
    /// Milliseconds of processing per raw reading — the Fig. 5(j)
    /// metric. An empty run reports 0 (not NaN), so the value is always
    /// safe to put in a table or a JSON report.
    pub fn ms_per_reading(&self) -> f64 {
        if self.readings == 0 {
            return 0.0;
        }
        self.elapsed.as_secs_f64() * 1e3 / self.readings as f64
    }

    /// Readings processed per second. An empty or instantaneous run
    /// reports 0 (not NaN/inf): a zero-reading trace has no meaningful
    /// throughput, and a sub-nanosecond elapsed time means the clock
    /// did not resolve the run.
    pub fn readings_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if self.readings == 0 || secs <= 1e-9 {
            return 0.0;
        }
        self.readings as f64 / secs
    }

    /// Scores the events against a scenario's ground truth.
    pub fn score(&self, sc: &Scenario) -> ErrorStats {
        ErrorStats::score(&self.events, &sc.trace.truth)
    }
}

fn last_epoch(batches: &[EpochBatch]) -> Epoch {
    batches.last().map(|b| b.epoch).unwrap_or(Epoch(0))
}

/// Engine knobs shared by every variant run.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    pub particles_per_object: usize,
    pub report_delay: u64,
    /// Worker threads for the per-object fan-out (`rfid_core::exec`);
    /// events are bit-identical for every value.
    pub worker_threads: usize,
    /// Object-state shards (`rfid_core::shard`); events are
    /// bit-identical for every value.
    pub num_shards: usize,
}

impl RunOpts {
    /// Sequential single-shard run (the default execution mode).
    pub fn new(particles_per_object: usize, report_delay: u64) -> Self {
        Self {
            particles_per_object,
            report_delay,
            worker_threads: 1,
            num_shards: 1,
        }
    }

    /// Same run fanned out across `workers` threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.worker_threads = workers;
        self
    }

    /// Same run with object state partitioned into `shards`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.num_shards = shards;
        self
    }
}

/// Runs an engine variant with a given sensor choice over prepared
/// batches. `params` supplies the motion/sensing/object components.
#[allow(clippy::too_many_arguments)] // flat experiment knobs
pub fn run_engine_variant<P: LocationPrior + Clone>(
    batches: &[EpochBatch],
    prior: &P,
    shelf_tags: &[(rfid_stream::TagId, rfid_geom::Point3)],
    variant: EngineVariant,
    sensor: InferenceSensor,
    params: ModelParams,
    particles_per_object: usize,
    report_delay: u64,
) -> RunOutput {
    run_engine_variant_opts(
        batches,
        prior,
        shelf_tags,
        variant,
        sensor,
        params,
        RunOpts::new(particles_per_object, report_delay),
    )
}

/// The engine configuration a variant runs with under the given
/// options — shared by the batch and pipeline entry points so the two
/// paths can never diverge.
fn variant_config(variant: EngineVariant, opts: RunOpts) -> FilterConfig {
    let mut cfg = match variant {
        EngineVariant::Unfactored { .. } | EngineVariant::Factored => {
            FilterConfig::factored_default()
        }
        EngineVariant::FactoredIndexed => FilterConfig::indexed_default(),
        EngineVariant::Full => FilterConfig::full_default(),
    };
    cfg.particles_per_object = opts.particles_per_object;
    cfg.report_delay_epochs = opts.report_delay;
    cfg.worker_threads = opts.worker_threads;
    cfg.num_shards = opts.num_shards;
    cfg
}

/// `params` with its sensor component replaced by a learned model.
fn with_logistic_sensor(mut params: ModelParams, sp: rfid_model::SensorParams) -> ModelParams {
    params.sensor = sp;
    params
}

/// [`run_engine_variant`] with the full option set.
pub fn run_engine_variant_opts<P: LocationPrior + Clone>(
    batches: &[EpochBatch],
    prior: &P,
    shelf_tags: &[(rfid_stream::TagId, rfid_geom::Point3)],
    variant: EngineVariant,
    sensor: InferenceSensor,
    params: ModelParams,
    opts: RunOpts,
) -> RunOutput {
    let cfg = variant_config(variant, opts);
    let readings: usize = batches.iter().map(|b| b.readings.len()).sum();

    match (variant, sensor) {
        (EngineVariant::Unfactored { particles }, InferenceSensor::TrueCone(c)) => {
            let model = JointModel::with_sensor(c, params);
            run_unfactored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                particles,
                batches,
                readings,
            )
        }
        (EngineVariant::Unfactored { particles }, InferenceSensor::Logistic(sp)) => {
            let model = JointModel::new(with_logistic_sensor(params, sp));
            run_unfactored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                particles,
                batches,
                readings,
            )
        }
        (_, InferenceSensor::TrueCone(c)) => {
            let model = JointModel::with_sensor(c, params);
            run_factored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                batches,
                readings,
            )
        }
        (_, InferenceSensor::Logistic(sp)) => {
            let model = JointModel::new(with_logistic_sensor(params, sp));
            run_factored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                batches,
                readings,
            )
        }
    }
}

fn run_factored<P: LocationPrior + Clone, S: ReadRateModel>(
    model: JointModel<S>,
    prior: P,
    shelf_tags: Vec<(rfid_stream::TagId, rfid_geom::Point3)>,
    cfg: FilterConfig,
    batches: &[EpochBatch],
    readings: usize,
) -> RunOutput {
    let mut engine = InferenceEngine::new(model, prior, shelf_tags, cfg).expect("valid config");
    let start = Instant::now();
    let events = run_engine(&mut engine, batches);
    let elapsed = start.elapsed();
    RunOutput {
        events,
        elapsed,
        readings,
        memory_bytes: engine.memory_bytes(),
        stats: Some(engine.stats().clone()),
        pipeline: None,
    }
}

fn run_unfactored<P: LocationPrior + Clone, S: ReadRateModel>(
    model: JointModel<S>,
    prior: P,
    shelf_tags: Vec<(rfid_stream::TagId, rfid_geom::Point3)>,
    cfg: FilterConfig,
    particles: usize,
    batches: &[EpochBatch],
    readings: usize,
) -> RunOutput {
    let mut filter =
        BasicParticleFilter::new(model, prior, shelf_tags, cfg, particles).expect("valid config");
    let start = Instant::now();
    let mut events = Vec::new();
    for b in batches {
        events.extend(filter.process_batch(b));
    }
    events.extend(filter.finalize(last_epoch(batches)));
    let elapsed = start.elapsed();
    RunOutput {
        events,
        elapsed,
        readings,
        memory_bytes: particles * filter.num_objects() * std::mem::size_of::<rfid_geom::Point3>(),
        stats: None,
        pipeline: None,
    }
}

/// Runs the engine in "motion model Off" mode (reports trusted as
/// truth) — the Fig. 5(g) comparison curve.
pub fn run_motion_off<P: LocationPrior + Clone>(
    batches: &[EpochBatch],
    prior: &P,
    shelf_tags: &[(rfid_stream::TagId, rfid_geom::Point3)],
    sensor: InferenceSensor,
    params: ModelParams,
    particles_per_object: usize,
    report_delay: u64,
) -> RunOutput {
    let mut cfg = FilterConfig::factored_default();
    cfg.reader_mode = ReaderMode::TrustReports;
    cfg.reader_particles = 1;
    cfg.particles_per_object = particles_per_object;
    cfg.report_delay_epochs = report_delay;
    let readings: usize = batches.iter().map(|b| b.readings.len()).sum();
    match sensor {
        InferenceSensor::TrueCone(c) => {
            let model = JointModel::with_sensor(c, params);
            run_factored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                batches,
                readings,
            )
        }
        InferenceSensor::Logistic(sp) => {
            let model = JointModel::new(with_logistic_sensor(params, sp));
            run_factored(
                model,
                prior.clone(),
                shelf_tags.to_vec(),
                cfg,
                batches,
                readings,
            )
        }
    }
}

/// Runs the SMURF baseline.
pub fn run_baseline_smurf(
    batches: &[EpochBatch],
    shelves: Vec<Aabb>,
    read_range: f64,
    ignored: &[(rfid_stream::TagId, rfid_geom::Point3)],
) -> RunOutput {
    let readings: usize = batches.iter().map(|b| b.readings.len()).sum();
    let mut smurf = Smurf::new(
        SmurfConfig::new(read_range, shelves),
        ignored.iter().map(|(t, _)| *t),
    );
    let start = Instant::now();
    let mut events = Vec::new();
    for b in batches {
        events.extend(smurf.process_batch(b));
    }
    events.extend(smurf.finalize(last_epoch(batches)));
    RunOutput {
        events,
        elapsed: start.elapsed(),
        readings,
        stats: None,
        memory_bytes: 0,
        pipeline: None,
    }
}

/// Runs the uniform-sampling baseline.
pub fn run_baseline_uniform(
    batches: &[EpochBatch],
    shelves: Vec<Aabb>,
    read_range: f64,
    ignored: &[(rfid_stream::TagId, rfid_geom::Point3)],
    seed: u64,
) -> RunOutput {
    let readings: usize = batches.iter().map(|b| b.readings.len()).sum();
    let mut uni = UniformBaseline::new(read_range, shelves, ignored.iter().map(|(t, _)| *t), seed);
    let start = Instant::now();
    let mut events = Vec::new();
    for b in batches {
        events.extend(uni.process_batch(b));
    }
    events.extend(uni.finalize(last_epoch(batches)));
    RunOutput {
        events,
        elapsed: start.elapsed(),
        readings,
        stats: None,
        memory_bytes: 0,
        pipeline: None,
    }
}

/// Drives any [`InferenceStage`] through the streaming pipeline over a
/// simulated trace (incremental source, watermark synchronization) and
/// returns the collected events plus the pipeline's buffer statistics.
pub fn drive_pipeline<St: InferenceStage>(
    trace: &SimTrace,
    stage: St,
) -> (Vec<LocationEvent>, Duration, PipelineStats, St) {
    let mut pipeline = Pipeline::new(trace.epoch_len, stage, Vec::new());
    let start = Instant::now();
    let stats = pipeline.run_to_completion(&mut trace.stream());
    let elapsed = start.elapsed();
    let (stage, events, _) = pipeline.into_parts();
    (events, elapsed, stats, stage)
}

/// [`run_engine_variant_opts`], but through the streaming pipeline:
/// the trace's raw streams are pulled incrementally through the
/// synchronizer into the engine — no `Vec<EpochBatch>` is ever built.
/// Event streams are bit-identical to the batch path.
pub fn run_pipeline_variant_opts<P: LocationPrior + Clone>(
    trace: &SimTrace,
    prior: &P,
    variant: EngineVariant,
    sensor: InferenceSensor,
    params: ModelParams,
    opts: RunOpts,
) -> RunOutput {
    let cfg = variant_config(variant, opts);
    let shelf_tags = trace.shelf_tags.clone();

    fn run_factored_pipeline<P: LocationPrior + Clone, S: ReadRateModel>(
        trace: &SimTrace,
        model: JointModel<S>,
        prior: P,
        shelf_tags: Vec<(rfid_stream::TagId, rfid_geom::Point3)>,
        cfg: FilterConfig,
    ) -> RunOutput {
        let engine = InferenceEngine::new(model, prior, shelf_tags, cfg).expect("valid config");
        let (events, elapsed, stats, engine) = drive_pipeline(trace, engine);
        RunOutput {
            events,
            elapsed,
            readings: stats.batch_readings as usize,
            memory_bytes: engine.memory_bytes(),
            stats: Some(engine.stats().clone()),
            pipeline: Some(stats),
        }
    }

    fn run_unfactored_pipeline<P: LocationPrior + Clone, S: ReadRateModel>(
        trace: &SimTrace,
        model: JointModel<S>,
        prior: P,
        shelf_tags: Vec<(rfid_stream::TagId, rfid_geom::Point3)>,
        cfg: FilterConfig,
        particles: usize,
    ) -> RunOutput {
        let filter = BasicParticleFilter::new(model, prior, shelf_tags, cfg, particles)
            .expect("valid config");
        let (events, elapsed, stats, filter) = drive_pipeline(trace, filter);
        RunOutput {
            events,
            elapsed,
            readings: stats.batch_readings as usize,
            memory_bytes: particles
                * filter.num_objects()
                * std::mem::size_of::<rfid_geom::Point3>(),
            stats: None,
            pipeline: Some(stats),
        }
    }

    match (variant, sensor) {
        (EngineVariant::Unfactored { particles }, InferenceSensor::TrueCone(c)) => {
            let model = JointModel::with_sensor(c, params);
            run_unfactored_pipeline(trace, model, prior.clone(), shelf_tags, cfg, particles)
        }
        (EngineVariant::Unfactored { particles }, InferenceSensor::Logistic(sp)) => {
            let model = JointModel::new(with_logistic_sensor(params, sp));
            run_unfactored_pipeline(trace, model, prior.clone(), shelf_tags, cfg, particles)
        }
        (_, InferenceSensor::TrueCone(c)) => {
            let model = JointModel::with_sensor(c, params);
            run_factored_pipeline(trace, model, prior.clone(), shelf_tags, cfg)
        }
        (_, InferenceSensor::Logistic(sp)) => {
            let model = JointModel::new(with_logistic_sensor(params, sp));
            run_factored_pipeline(trace, model, prior.clone(), shelf_tags, cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::scenario;

    #[test]
    fn factored_run_produces_scored_events() {
        let sc = scenario::small_trace(8, 4, 77);
        let out = run_engine_variant(
            &sc.trace.epoch_batches(),
            &sc.layout,
            &sc.trace.shelf_tags,
            EngineVariant::Factored,
            InferenceSensor::TrueCone(ConeSensor::paper_default()),
            ModelParams::default_warehouse(),
            300,
            30,
        );
        assert_eq!(out.events.len(), 8);
        let score = out.score(&sc);
        assert_eq!(score.n, 8);
        assert!(score.mean_xy < 2.0, "error {}", score.mean_xy);
        assert!(out.ms_per_reading() > 0.0);
    }

    #[test]
    fn pipeline_run_matches_batch_run() {
        let sc = scenario::small_trace(8, 4, 77);
        let batch = run_engine_variant(
            &sc.trace.epoch_batches(),
            &sc.layout,
            &sc.trace.shelf_tags,
            EngineVariant::FactoredIndexed,
            InferenceSensor::TrueCone(ConeSensor::paper_default()),
            ModelParams::default_warehouse(),
            200,
            30,
        );
        let piped = run_pipeline_variant_opts(
            &sc.trace,
            &sc.layout,
            EngineVariant::FactoredIndexed,
            InferenceSensor::TrueCone(ConeSensor::paper_default()),
            ModelParams::default_warehouse(),
            RunOpts::new(200, 30),
        );
        assert_eq!(batch.readings, piped.readings);
        assert_eq!(batch.events.len(), piped.events.len());
        for (a, b) in batch.events.iter().zip(&piped.events) {
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.tag, b.tag);
            assert_eq!(a.location.x.to_bits(), b.location.x.to_bits());
            assert_eq!(a.location.y.to_bits(), b.location.y.to_bits());
        }
        let pstats = piped.pipeline.expect("pipeline stats recorded");
        assert!(pstats.sync_pending_high_water >= 1);
        assert!(pstats.epochs > 0);
    }

    #[test]
    fn zero_reading_run_reports_zero_not_nan() {
        let out = RunOutput {
            events: Vec::new(),
            elapsed: Duration::ZERO,
            readings: 0,
            stats: None,
            memory_bytes: 0,
            pipeline: None,
        };
        assert_eq!(out.ms_per_reading(), 0.0);
        assert_eq!(out.readings_per_sec(), 0.0);
        assert!(out.ms_per_reading().is_finite());
        assert!(out.readings_per_sec().is_finite());
        // readings but an unresolvable clock: still finite
        let fast = RunOutput {
            readings: 10,
            ..out
        };
        assert_eq!(fast.readings_per_sec(), 0.0);
    }

    #[test]
    fn baselines_run_and_score() {
        let sc = scenario::small_trace(8, 4, 78);
        let shelf = rfid_model::object::LocationPrior::bounds(&sc.layout);
        let batches = sc.trace.epoch_batches();
        let s = run_baseline_smurf(&batches, vec![shelf], 4.0, &sc.trace.shelf_tags);
        let u = run_baseline_uniform(&batches, vec![shelf], 4.0, &sc.trace.shelf_tags, 1);
        assert!(!s.events.is_empty());
        assert!(!u.events.is_empty());
        assert!(s.score(&sc).mean_xy.is_finite());
        assert!(u.score(&sc).mean_xy.is_finite());
    }
}
