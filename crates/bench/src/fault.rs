//! Fault plans for the crash-recovery harness: a small, string-encodable
//! description of *where* a durable run should die.
//!
//! The encoding exists so a parent test can pass a crash point to the
//! `recovery_harness` child binary through `argv` and sweep crash
//! points from the outside:
//!
//! | encoding   | meaning                                                        |
//! |------------|----------------------------------------------------------------|
//! | `kill:E`   | abort right after epoch `E` is durably complete                |
//! | `bytes:N`  | abort before the log write that would cross byte `N`           |
//! | `torn:N`   | write a *partial* record across byte `N`, then abort           |
//! | `ckpt:E`   | crash mid-checkpoint-rotation at epoch `E` (old checkpoint     |
//! |            | already demoted, new one never written)                        |
//!
//! `kill` and `ckpt` are driven by the run loop in
//! [`crate::recovery`]; `bytes` and `torn` arm a
//! [`rfid_serve::WriteFault`] inside the segment log itself, so the
//! abort happens in the middle of the durability layer's own I/O.

use std::fmt;
use std::str::FromStr;

/// One planned crash point in a durable run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// Abort immediately after `complete_epoch(E)` + fsync. The log is
    /// consistent and ends exactly at `E`; recovery must lose nothing.
    KillAtEpoch(u64),
    /// Abort before the record write whose bytes would cross offset
    /// `N` within the current segment file (clean record boundary).
    KillAfterBytes(u64),
    /// Write a partial record across offset `N`, fsync the garbage,
    /// then abort — the classic torn tail recovery must truncate.
    TornWrite(u64),
    /// At checkpoint epoch `E`: demote `engine.ckpt` to
    /// `engine.prev.ckpt`, then abort before writing the new
    /// checkpoint. Recovery must fall back to the *previous*
    /// checkpoint and replay further forward.
    CheckpointRotationCrash(u64),
}

impl FaultPlan {
    /// The epoch-triggered plans (the run loop checks these); byte
    /// plans return `None` because the log layer fires them itself.
    pub fn trigger_epoch(&self) -> Option<u64> {
        match self {
            FaultPlan::KillAtEpoch(e) | FaultPlan::CheckpointRotationCrash(e) => Some(*e),
            FaultPlan::KillAfterBytes(_) | FaultPlan::TornWrite(_) => None,
        }
    }

    /// The [`rfid_serve::WriteFault`] to arm on the segment log, if
    /// this plan is byte-triggered.
    pub fn write_fault(&self) -> Option<rfid_serve::WriteFault> {
        match self {
            FaultPlan::KillAfterBytes(n) => Some(rfid_serve::WriteFault {
                after_bytes: *n,
                torn: false,
            }),
            FaultPlan::TornWrite(n) => Some(rfid_serve::WriteFault {
                after_bytes: *n,
                torn: true,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlan::KillAtEpoch(e) => write!(f, "kill:{e}"),
            FaultPlan::KillAfterBytes(n) => write!(f, "bytes:{n}"),
            FaultPlan::TornWrite(n) => write!(f, "torn:{n}"),
            FaultPlan::CheckpointRotationCrash(e) => write!(f, "ckpt:{e}"),
        }
    }
}

/// A malformed fault-plan string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultError(pub String);

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault plan {:?} (expected kill:E, bytes:N, torn:N, or ckpt:E)",
            self.0
        )
    }
}

impl std::error::Error for ParseFaultError {}

impl FromStr for FaultPlan {
    type Err = ParseFaultError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseFaultError(s.to_string());
        let (kind, value) = s.split_once(':').ok_or_else(bad)?;
        let value: u64 = value.parse().map_err(|_| bad())?;
        match kind {
            "kill" => Ok(FaultPlan::KillAtEpoch(value)),
            "bytes" => Ok(FaultPlan::KillAfterBytes(value)),
            "torn" => Ok(FaultPlan::TornWrite(value)),
            "ckpt" => Ok(FaultPlan::CheckpointRotationCrash(value)),
            _ => Err(bad()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        for plan in [
            FaultPlan::KillAtEpoch(42),
            FaultPlan::KillAfterBytes(9000),
            FaultPlan::TornWrite(512),
            FaultPlan::CheckpointRotationCrash(96),
        ] {
            let s = plan.to_string();
            assert_eq!(s.parse::<FaultPlan>().unwrap(), plan);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        for s in ["", "kill", "kill:", "kill:x", "boom:3", "torn:-1"] {
            assert!(s.parse::<FaultPlan>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn byte_plans_arm_the_log_fault() {
        let f = FaultPlan::TornWrite(100).write_fault().unwrap();
        assert!(f.torn);
        assert_eq!(f.after_bytes, 100);
        assert!(FaultPlan::KillAtEpoch(3).write_fault().is_none());
        assert_eq!(FaultPlan::KillAtEpoch(3).trigger_epoch(), Some(3));
        assert_eq!(FaultPlan::KillAfterBytes(3).trigger_epoch(), None);
    }
}
