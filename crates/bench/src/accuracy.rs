//! The accuracy matrix: every system (engine, SMURF, uniform) scored
//! over the adversarial scenario library plus the read-rate sweep —
//! the quality twin of the throughput trajectory.
//!
//! `experiments -- accuracy --json` runs the matrix and writes
//! `BENCH_accuracy.json` at the repo root; the committed file is the
//! trajectory future PRs are judged against, exactly as
//! `BENCH_throughput.json` gates performance. The paper's headline
//! ordering — the factored filter beats SMURF beats uniform — must
//! hold as *event-level F1*, not just mean feet of error.

use crate::metrics::{score_scenario, EventScoreConfig, ScenarioScore};
use crate::runner::{
    run_baseline_smurf, run_baseline_uniform, run_engine_variant_opts, EngineVariant,
    InferenceSensor, RunOpts,
};
use rfid_geom::Aabb;
use rfid_model::sensor::ConeSensor;
use rfid_model::ModelParams;
use rfid_sim::scenario::{self, Scenario};

/// Engine and scoring knobs of one matrix run.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyConfig {
    /// Particles per object for the engine.
    pub particles_per_object: usize,
    /// Output-policy report delay (epochs). Shorter than the paper's
    /// 60 so churn departures land *after* the affected events are out.
    pub report_delay: u64,
    /// Event-matching radius etc.
    pub score: EventScoreConfig,
    /// Sampling radius handed to both baselines (the usable read
    /// range, as in the Fig. 6(b) comparison).
    pub baseline_read_range: f64,
    /// Execution knobs (results are bit-identical for every value).
    pub opts_workers: usize,
    pub opts_shards: usize,
}

impl AccuracyConfig {
    /// The committed-baseline operating point.
    pub fn standard(quick: bool) -> Self {
        Self {
            particles_per_object: if quick { 200 } else { 400 },
            report_delay: 30,
            score: EventScoreConfig::default(),
            baseline_read_range: 4.4,
            opts_workers: 1,
            opts_shards: 1,
        }
    }
}

/// One scenario of the matrix, with the ground-truth sensor's
/// major-range read rate (the engine infers with the matching cone).
pub struct LibraryEntry {
    pub name: &'static str,
    pub rr_major: f64,
    pub scenario: Scenario,
}

/// The read-rate sweep names (the acceptance ordering — engine F1
/// strictly above both baselines — is asserted on these rows).
pub const READ_RATE_SWEEP: [&str; 3] = ["read_rate_100", "read_rate_80", "read_rate_60"];

/// Builds the scenario library: the eight adversarial generators plus
/// the read-rate sweep. `quick` keeps a 4-scenario subset for CI
/// smoke; the committed `BENCH_accuracy.json` uses the full set.
pub fn library(quick: bool) -> Vec<LibraryEntry> {
    let seed = 4004;
    let entry = |name, rr_major, scenario| LibraryEntry {
        name,
        rr_major,
        scenario,
    };
    if quick {
        return vec![
            entry("churn", 1.0, scenario::tag_churn_trace(seed)),
            entry("dropout", 1.0, scenario::reader_dropout_trace(seed)),
            entry("read_rate_100", 1.0, scenario::read_rate_trace(1.0, seed)),
            entry("read_rate_60", 0.6, scenario::read_rate_trace(0.6, seed)),
        ];
    }
    let mut v = vec![
        entry("churn", 1.0, scenario::tag_churn_trace(seed)),
        entry("dropout", 1.0, scenario::reader_dropout_trace(seed)),
        entry("bursty", 1.0, scenario::bursty_read_rate_trace(seed)),
        entry("dense_shelf", 1.0, scenario::dense_shelf_trace(seed)),
        entry("conveyor", 1.0, scenario::conveyor_trace(seed)),
        entry("multi_room", 1.0, scenario::multi_room_trace(seed)),
        entry("cold_start", 1.0, scenario::cold_start_trace(seed)),
        entry("silent_skew", 1.0, scenario::silent_stream_trace(seed)),
    ];
    for (name, rr) in READ_RATE_SWEEP
        .iter()
        .zip([1.0f64, 0.8, 0.6])
        .map(|(n, rr)| (*n, rr))
    {
        v.push(entry(name, rr, scenario::read_rate_trace(rr, seed)));
    }
    v
}

/// One row of the matrix: one system over one scenario.
pub struct AccuracyRow {
    pub scenario: &'static str,
    pub system: &'static str,
    pub score: ScenarioScore,
}

/// Runs one system triplet over a library entry.
pub fn score_entry(entry: &LibraryEntry, cfg: &AccuracyConfig) -> Vec<AccuracyRow> {
    let sc = &entry.scenario;
    let batches = sc.trace.epoch_batches();
    let shelves: Vec<Aabb> = sc.layout.shelves().iter().map(|s| s.bbox).collect();

    let engine = run_engine_variant_opts(
        &batches,
        &sc.layout,
        &sc.trace.shelf_tags,
        EngineVariant::Full,
        InferenceSensor::TrueCone(ConeSensor::with_rr_major(entry.rr_major)),
        ModelParams::default_warehouse(),
        RunOpts::new(cfg.particles_per_object, cfg.report_delay)
            .with_workers(cfg.opts_workers)
            .with_shards(cfg.opts_shards),
    );
    let smurf = run_baseline_smurf(
        &batches,
        shelves.clone(),
        cfg.baseline_read_range,
        &sc.trace.shelf_tags,
    );
    let uniform = run_baseline_uniform(
        &batches,
        shelves,
        cfg.baseline_read_range,
        &sc.trace.shelf_tags,
        21,
    );
    [("engine", engine), ("smurf", smurf), ("uniform", uniform)]
        .into_iter()
        .map(|(system, out)| AccuracyRow {
            scenario: entry.name,
            system,
            score: score_scenario(&out.events, sc, &cfg.score),
        })
        .collect()
}

/// The scenario names of the library (`--list`, filter validation).
pub fn scenario_names(quick: bool) -> Vec<&'static str> {
    library(quick).iter().map(|e| e.name).collect()
}

/// Runs the full matrix.
pub fn run_matrix(cfg: &AccuracyConfig, quick: bool) -> Vec<AccuracyRow> {
    run_matrix_filtered(cfg, quick, None)
}

/// Runs the matrix restricted to scenarios whose name contains
/// `filter` (all of them when `None`) — single-scenario debugging
/// without a full matrix run.
pub fn run_matrix_filtered(
    cfg: &AccuracyConfig,
    quick: bool,
    filter: Option<&str>,
) -> Vec<AccuracyRow> {
    let mut rows = Vec::new();
    for entry in library(quick) {
        if filter.is_some_and(|f| !entry.name.contains(f)) {
            continue;
        }
        let triplet = score_entry(&entry, cfg);
        for r in &triplet {
            eprintln!(
                "  [{} / {}] P={:.3} R={:.3} F1={:.3} mean_xy={:.2} ft",
                r.scenario,
                r.system,
                r.score.events.precision,
                r.score.events.recall,
                r.score.events.f1,
                r.score.error.mean_xy,
            );
        }
        rows.extend(triplet);
    }
    rows
}

/// A JSON number that may be non-finite: NaN/inf serialize as `null`.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

/// Serializes matrix rows as the `BENCH_accuracy.json` document.
pub fn to_json(rows: &[AccuracyRow], cfg: &AccuracyConfig) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"match_radius_xy_ft\": {},\n  \"particles_per_object\": {},\n  \
         \"report_delay_epochs\": {},\n  \"baseline_read_range_ft\": {},\n",
        cfg.score.match_radius_xy,
        cfg.particles_per_object,
        cfg.report_delay,
        cfg.baseline_read_range,
    ));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let e = &r.score.events;
        let c = &r.score.change;
        s.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"system\": \"{}\", \"events\": {}, \
             \"truth_tags\": {}, \"precision\": {}, \"recall\": {}, \"f1\": {}, \
             \"matched\": {}, \"mislocated\": {}, \"phantom\": {}, \"missed_tags\": {}, \
             \"mean_xy_ft\": {}, \"max_xy_ft\": {}, \"containment\": {}, \
             \"moves_total\": {}, \"moves_detected\": {}, \"mean_change_delay_epochs\": {}}}{}\n",
            r.scenario,
            r.system,
            e.events,
            e.truth_tags,
            jnum(e.precision),
            jnum(e.recall),
            jnum(e.f1),
            e.confusion.matched,
            e.confusion.mislocated,
            e.confusion.phantom,
            e.confusion.missed_tags,
            jnum(r.score.error.mean_xy),
            jnum(r.score.error.max_xy),
            jnum(r.score.containment),
            c.moves_total,
            c.moves_detected,
            jnum(c.mean_delay_epochs),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_library_is_a_subset_with_required_sweep_points() {
        let quick = library(true);
        assert!(quick.len() >= 3);
        assert!(quick.iter().any(|e| e.name.starts_with("read_rate")));
        let full = library(false);
        assert!(full.len() >= 8 + 3, "full library: {}", full.len());
        for name in READ_RATE_SWEEP {
            assert!(full.iter().any(|e| e.name == name), "missing {name}");
        }
        // names are unique (they key the committed JSON)
        let mut names: Vec<_> = full.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), full.len());
    }

    #[test]
    fn scenario_filter_selects_by_substring() {
        let names = scenario_names(false);
        assert!(names.contains(&"churn"));
        // a filter matching nothing runs nothing (and is cheap enough
        // to call here — no engine run happens)
        let rows = run_matrix_filtered(
            &AccuracyConfig::standard(true),
            true,
            Some("no_such_scenario"),
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn json_escapes_non_finite_as_null() {
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(f64::INFINITY), "null");
        assert_eq!(jnum(0.5), "0.5000");
    }
}
