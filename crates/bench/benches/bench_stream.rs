//! Microbenchmark: stream synchronization and the two CQL queries —
//! the non-inference part of the pipeline must sustain reader rates
//! (>1500 readings/s) trivially.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfid_geom::{Point3, Pose};
use rfid_stream::queries::{FireCodeQuery, LocationChangeQuery};
use rfid_stream::sync::synchronize_traces;
use rfid_stream::{Epoch, LocationEvent, ReaderLocationReport, RfidReading, TagId};

fn bench_stream(c: &mut Criterion) {
    // 10k readings, 1k reports
    let readings: Vec<RfidReading> = (0..10_000)
        .map(|i| RfidReading {
            time: i as f64 * 0.1,
            tag: TagId(i % 64),
        })
        .collect();
    let reports: Vec<ReaderLocationReport> = (0..1_000)
        .map(|i| ReaderLocationReport {
            time: i as f64,
            pose: Pose::new(Point3::new(0.0, i as f64 * 0.1, 0.0), 0.0),
        })
        .collect();
    let events: Vec<LocationEvent> = (0..10_000)
        .map(|i| {
            LocationEvent::new(
                Epoch(i / 64),
                TagId(i % 64),
                Point3::new((i % 7) as f64, (i % 11) as f64, 0.0),
            )
        })
        .collect();

    let mut g = c.benchmark_group("stream");
    g.bench_function("synchronize_10k_readings", |b| {
        b.iter(|| synchronize_traces(black_box(&readings), black_box(&reports), 1.0).len())
    });
    g.bench_function("location_change_query_10k", |b| {
        b.iter(|| {
            let mut q = LocationChangeQuery::new(0.1);
            let mut n = 0;
            for e in &events {
                if q.push(black_box(e)).is_some() {
                    n += 1;
                }
            }
            n
        })
    });
    g.bench_function("fire_code_query_10k", |b| {
        b.iter(|| {
            let mut q = FireCodeQuery::new(5.0, |_| 50.0, 200.0);
            let mut n = 0;
            for e in &events {
                let t = e.epoch.0 as f64;
                q.push(t, e);
                n += q.evaluate(t).len();
            }
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
