//! Microbenchmark: belief compression and decompression (§IV-D).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_core::compression::CompressedBelief;
use rfid_core::factored::ReaderFilter;
use rfid_geom::{Point3, Pose};
use rfid_stream::Epoch;

fn cloud(n: usize, seed: u64) -> Vec<(f64, Point3)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                1.0 / n as f64,
                Point3::new(
                    2.0 + rng.gen_range(-0.2..0.2),
                    5.0 + rng.gen_range(-0.3..0.3),
                    0.0,
                ),
            )
        })
        .collect()
}

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("compression");
    for &n in &[100usize, 1000] {
        let cl = cloud(n, 1);
        g.bench_function(format!("compress_{n}"), |b| {
            b.iter(|| CompressedBelief::compress(black_box(&cl), Epoch(0)).unwrap())
        });
    }
    let compressed = CompressedBelief::compress(&cloud(1000, 2), Epoch(0)).unwrap();
    let reader = ReaderFilter::new(100, Pose::identity());
    g.bench_function("decompress_10", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| compressed.decompress(10, black_box(&reader), 0, &mut rng))
    });
    g.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
