//! Microbenchmark: sensor-model likelihood evaluation — the innermost
//! loop of particle weighting (called once per particle per epoch).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfid_geom::{Point3, Pose};
use rfid_model::sensor::{ConeSensor, LogisticSensorModel, ReadRateModel, SphericalSensor};
use rfid_model::SensorParams;

fn bench_sensor_eval(c: &mut Criterion) {
    let logistic = LogisticSensorModel::new(SensorParams::default_cone_like());
    let cone = ConeSensor::paper_default();
    let sphere = SphericalSensor::for_timeout_ms(500);
    let pose = Pose::new(Point3::new(0.0, 5.0, 0.0), 0.3);
    let tags: Vec<Point3> = (0..64)
        .map(|i| Point3::new(2.0, 3.0 + i as f64 * 0.1, 0.0))
        .collect();

    let mut g = c.benchmark_group("sensor_eval");
    g.bench_function("logistic_log_likelihood_64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in &tags {
                acc += logistic.log_likelihood(black_box(&pose), black_box(t), true);
            }
            acc
        })
    });
    g.bench_function("cone_p_read_64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in &tags {
                acc += cone.p_read(black_box(&pose), black_box(t));
            }
            acc
        })
    });
    g.bench_function("spherical_p_read_64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in &tags {
                acc += sphere.p_read(black_box(&pose), black_box(t));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sensor_eval);
criterion_main!(benches);
