//! Whole-trace throughput of the hot path rebuilt in the
//! allocation-free/parallel execution PR: the indexed variant
//! single-threaded (the acceptance metric tracked in
//! `BENCH_throughput.json`) and the factored variant under the
//! `worker_threads` fan-out. Events are bit-identical across worker
//! counts, so the variants measure cost only.

use criterion::{criterion_group, criterion_main, Criterion};
use rfid_bench::runner::{run_engine_variant_opts, EngineVariant, InferenceSensor, RunOpts};
use rfid_model::sensor::ConeSensor;
use rfid_model::ModelParams;
use rfid_sim::scenario;

fn bench_throughput(c: &mut Criterion) {
    let sc = scenario::scalability_trace(100, 99);
    let batches = sc.trace.epoch_batches();
    let mut g = c.benchmark_group("throughput_100_objects");
    g.sample_size(10);
    for (name, variant, workers) in [
        ("indexed_1_thread", EngineVariant::FactoredIndexed, 1usize),
        ("factored_1_thread", EngineVariant::Factored, 1),
        ("factored_4_threads", EngineVariant::Factored, 4),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                run_engine_variant_opts(
                    &batches,
                    &sc.layout,
                    &sc.trace.shelf_tags,
                    variant,
                    InferenceSensor::TrueCone(ConeSensor::paper_default()),
                    ModelParams::default_warehouse(),
                    RunOpts::new(200, 60).with_workers(workers),
                )
                .events
                .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
