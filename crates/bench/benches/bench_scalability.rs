//! The Fig. 5(j) engine-variant comparison as a Criterion benchmark:
//! whole-trace processing cost for each variant at a fixed object
//! count. (The full sweep up to 20,000 objects lives in the
//! `experiments` binary; Criterion would take hours on it.)

use criterion::{criterion_group, criterion_main, Criterion};
use rfid_bench::runner::{run_engine_variant, EngineVariant, InferenceSensor};
use rfid_model::sensor::ConeSensor;
use rfid_model::ModelParams;
use rfid_sim::scenario;

fn bench_scalability(c: &mut Criterion) {
    let sc = scenario::scalability_trace(100, 99);
    let batches = sc.trace.epoch_batches();
    let mut g = c.benchmark_group("engine_variants_100_objects");
    g.sample_size(10);
    for (name, variant) in [
        ("factored", EngineVariant::Factored),
        ("indexed", EngineVariant::FactoredIndexed),
        ("full", EngineVariant::Full),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                run_engine_variant(
                    &batches,
                    &sc.layout,
                    &sc.trace.shelf_tags,
                    variant,
                    InferenceSensor::TrueCone(ConeSensor::paper_default()),
                    ModelParams::default_warehouse(),
                    200,
                    60,
                )
                .events
                .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
