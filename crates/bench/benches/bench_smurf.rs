//! Microbenchmark: the SMURF baseline's per-batch cost (it should be
//! far cheaper than inference — it does much less).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rfid_baselines::{Smurf, SmurfConfig, UniformBaseline};
use rfid_geom::{Aabb, Point3};
use rfid_sim::scenario;

fn bench_smurf(c: &mut Criterion) {
    let sc = scenario::small_trace(16, 4, 123);
    let batches = sc.trace.epoch_batches();
    let shelf = Aabb::new(Point3::new(1.5, 0.0, 0.0), Point3::new(2.5, 10.0, 0.0));
    let mut g = c.benchmark_group("baselines");
    g.bench_function("smurf_full_trace", |b| {
        b.iter(|| {
            let mut s = Smurf::new(SmurfConfig::new(4.0, vec![shelf]), []);
            let mut n = 0;
            for batch in &batches {
                n += s.process_batch(black_box(batch)).len();
            }
            n
        })
    });
    g.bench_function("uniform_full_trace", |b| {
        b.iter(|| {
            let mut u = UniformBaseline::new(4.0, vec![shelf], [], 1);
            let mut n = 0;
            for batch in &batches {
                n += u.process_batch(black_box(batch)).len();
            }
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_smurf);
criterion_main!(benches);
