//! Microbenchmark: the M-step logistic fit and one full EM iteration —
//! calibration is offline, but it must stay in seconds, not minutes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_learn::{calibrate, fit_logistic, EmConfig, SensorRow};
use rfid_model::sensor::{LogisticSensorModel, ReadRateModel};
use rfid_model::{ModelParams, SensorParams};
use rfid_sim::scenario;

fn rows(n: usize, seed: u64) -> Vec<SensorRow> {
    let truth = LogisticSensorModel::new(SensorParams::default_cone_like());
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let d = rng.gen_range(0.0..8.0);
            let th = rng.gen_range(0.0..1.5);
            SensorRow::from_dt(d, th, rng.gen::<f64>() < truth.p_read_dt(d, th), 1.0)
        })
        .collect()
}

fn bench_learning(c: &mut Criterion) {
    let mut g = c.benchmark_group("learning");
    let data = rows(5_000, 1);
    g.bench_function("logistic_fit_5k_rows", |b| {
        let init = SensorParams {
            a: [0.0, 0.0, 0.0],
            b: [0.0, 0.0],
        };
        b.iter(|| fit_logistic(black_box(&data), init, 1e-3, 50).nll)
    });

    let sc = scenario::small_trace(12, 4, 2);
    let batches = sc.trace.epoch_batches();
    g.sample_size(10);
    g.bench_function("em_one_iteration", |b| {
        let cfg = EmConfig {
            iterations: 1,
            particles_per_object: 200,
            reader_particles: 40,
            ..EmConfig::default()
        };
        b.iter(|| {
            calibrate(
                black_box(&batches),
                &sc.trace.shelf_tags,
                &sc.layout,
                ModelParams::default_warehouse(),
                &cfg,
            )
            .final_rows
        })
    });
    g.finish();
}

criterion_group!(benches, bench_learning);
criterion_main!(benches);
