//! Ablation benchmark: whole-trace engine cost as a function of the
//! particles-per-object budget (accuracy/cost frontier, cf. the
//! `ablation-particles` experiment for the accuracy side).

use criterion::{criterion_group, criterion_main, Criterion};
use rfid_bench::runner::{run_engine_variant, EngineVariant, InferenceSensor};
use rfid_model::sensor::ConeSensor;
use rfid_model::ModelParams;
use rfid_sim::scenario;

fn bench_particles(c: &mut Criterion) {
    let sc = scenario::small_trace(12, 4, 77);
    let batches = sc.trace.epoch_batches();
    let mut g = c.benchmark_group("particles_per_object");
    g.sample_size(10);
    for &k in &[100usize, 1000] {
        g.bench_function(format!("{k}"), |b| {
            b.iter(|| {
                run_engine_variant(
                    &batches,
                    &sc.layout,
                    &sc.trace.shelf_tags,
                    EngineVariant::Factored,
                    InferenceSensor::TrueCone(ConeSensor::paper_default()),
                    ModelParams::default_warehouse(),
                    k,
                    60,
                )
                .events
                .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_particles);
criterion_main!(benches);
