//! Microbenchmark: the simplified R*-tree and the region index — the
//! per-epoch cost of the spatial-indexing enhancement (§IV-C).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_geom::{Aabb, Point3};
use rfid_spatial::{RTree, RegionIndex};
use rfid_stream::TagId;

fn build_tree(n: usize, seed: u64) -> RTree<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = RTree::new();
    for i in 0..n as u32 {
        let c = Point3::new(
            rng.gen_range(-500.0..500.0),
            rng.gen_range(-500.0..500.0),
            0.0,
        );
        t.insert(Aabb::cube(c, rng.gen_range(1.0..6.0)), i);
    }
    t
}

fn bench_spatial(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial");
    for &n in &[1_000usize, 10_000] {
        let tree = build_tree(n, 7);
        g.bench_function(format!("rtree_query_{n}"), |b| {
            let q = Aabb::cube(Point3::new(0.0, 0.0, 0.0), 8.0);
            b.iter(|| tree.query(black_box(&q)).len())
        });
        g.bench_function(format!("rtree_insert_{n}_th"), |b| {
            // amortized insert into a tree of size n
            b.iter_batched(
                || build_tree(n, 8),
                |mut t| {
                    t.insert(Aabb::cube(Point3::new(1.0, 1.0, 0.0), 2.0), 0);
                    t
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    // the region index probe that runs once per epoch
    let mut idx: RegionIndex<TagId> = RegionIndex::new();
    let mut rng = StdRng::seed_from_u64(9);
    for i in 0..5_000u64 {
        let c = Point3::new(0.0, rng.gen_range(0.0..2500.0), 0.0);
        idx.insert_region(Aabb::cube(c, 3.0), [TagId(i), TagId(i + 1)]);
    }
    g.bench_function("region_index_probe_5000", |b| {
        let q = Aabb::cube(Point3::new(0.0, 1250.0, 0.0), 3.0);
        b.iter(|| idx.query_objects(black_box(&q)).len())
    });
    g.finish();
}

criterion_group!(benches, bench_spatial);
criterion_main!(benches);
