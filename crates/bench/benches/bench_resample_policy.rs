//! Ablation benchmark: resampling policy — maintained factored weights
//! (ESS-triggered) vs resample-every-step (the Ng et al. scheme the
//! paper contrasts against in §IV-B).

use criterion::{criterion_group, criterion_main, Criterion};
use rfid_core::engine::run_engine;
use rfid_core::{FilterConfig, InferenceEngine};
use rfid_model::sensor::ConeSensor;
use rfid_model::{JointModel, ModelParams};
use rfid_sim::scenario;

fn bench_resample_policy(c: &mut Criterion) {
    let sc = scenario::small_trace(12, 4, 88);
    let batches = sc.trace.epoch_batches();
    let mut g = c.benchmark_group("resample_policy");
    g.sample_size(10);
    for (name, frac) in [("ess_0.5", 0.5f64), ("always", 1.0)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = FilterConfig::factored_default();
                cfg.particles_per_object = 400;
                cfg.resample_ess_frac = frac;
                let model = JointModel::with_sensor(
                    ConeSensor::paper_default(),
                    ModelParams::default_warehouse(),
                );
                let mut engine = InferenceEngine::new(
                    model,
                    sc.layout.clone(),
                    sc.trace.shelf_tags.clone(),
                    cfg,
                )
                .unwrap();
                run_engine(&mut engine, &batches).len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_resample_policy);
criterion_main!(benches);
