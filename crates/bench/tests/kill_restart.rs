//! Kill-and-restart, for real: a child `recovery_harness` process is
//! driven into each canonical scenario, **aborted** at a planned crash
//! point (`SIGABRT`, no destructors, no flushes beyond what the
//! durability layer fsynced itself), restarted — possibly crashed
//! again — and the finally-completed run's event-stream digest must
//! equal the digest of an uninterrupted in-memory run.
//!
//! Crash points are derived from each scenario's own epoch range, so
//! the sweep tracks the traces instead of hardcoding epochs.

use rfid_bench::fault::FaultPlan;
use rfid_bench::recovery::{canonical_scenario, reference_digest};
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

const HARNESS: &str = env!("CARGO_BIN_EXE_recovery_harness");

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rfid-kill-restart-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the child once; returns (exited cleanly, stdout).
fn child(scenario: &str, dir: &PathBuf, fault: Option<&FaultPlan>) -> (bool, String) {
    let mut cmd = Command::new(HARNESS);
    cmd.arg("run").arg(scenario).arg(dir).arg("10");
    if let Some(plan) = fault {
        cmd.arg(plan.to_string());
    }
    let out = cmd.output().expect("spawn recovery_harness");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn parse_digest(stdout: &str) -> u64 {
    let hex = stdout
        .lines()
        .find_map(|l| l.strip_prefix("digest "))
        .unwrap_or_else(|| panic!("no digest line in output:\n{stdout}"));
    u64::from_str_radix(hex.trim(), 16).expect("hex digest")
}

/// Crashes the child at every plan in order, then restarts it once
/// more without a fault and checks the digest against the
/// uninterrupted reference.
fn converges(scenario: &str, plans: &[FaultPlan]) -> String {
    let (sc, cfg) = canonical_scenario(scenario).expect("known scenario");
    let golden = reference_digest(&sc, &cfg);
    let dir = temp_dir(scenario);
    for plan in plans {
        let (ok, out) = child(scenario, &dir, Some(plan));
        assert!(!ok, "{scenario}: child must die at {plan}, got:\n{out}");
    }
    let (ok, out) = child(scenario, &dir, None);
    assert!(ok, "{scenario}: final restart must complete:\n{out}");
    assert_eq!(
        parse_digest(&out),
        golden,
        "{scenario}: recovered digest diverged from the uninterrupted \
         run; harness output:\n{out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn last_epoch(scenario: &str) -> u64 {
    let (sc, _) = canonical_scenario(scenario).unwrap();
    sc.trace
        .epoch_batches()
        .last()
        .expect("non-empty trace")
        .epoch
        .0
}

#[test]
fn small_warehouse_survives_kill_then_torn_write() {
    let last = last_epoch("small_warehouse");
    let out = converges(
        "small_warehouse",
        &[
            FaultPlan::KillAtEpoch(last / 2),
            // the restart dies again, mid-record this time (each
            // resumed epoch logs >= 21 bytes, so this fires well
            // before completion)
            FaultPlan::TornWrite(last * 5),
        ],
    );
    // the torn tail must have been truncated on the final recovery
    assert!(
        out.contains("truncated-bytes"),
        "expected a torn-tail truncation, got:\n{out}"
    );
}

#[test]
fn low_read_rate_survives_a_checkpoint_rotation_crash() {
    let last = last_epoch("low_read_rate");
    assert!(last > 30, "scenario long enough for two checkpoints");
    // dies with the old checkpoint demoted and the new one unwritten;
    // recovery must fall back to engine.prev.ckpt
    let out = converges("low_read_rate", &[FaultPlan::CheckpointRotationCrash(30)]);
    assert!(
        out.contains("resumed-from 20"),
        "expected fallback to the epoch-20 checkpoint, got:\n{out}"
    );
}

#[test]
fn moving_object_survives_chained_byte_and_epoch_kills() {
    let last = last_epoch("moving_object");
    converges(
        "moving_object",
        &[
            // clean abort at a record boundary, early in the log
            FaultPlan::KillAfterBytes(last * 10),
            // then die again right at the final epoch: everything is
            // durable but FINISH — recovery regenerates the flush
            FaultPlan::KillAtEpoch(last),
        ],
    );
}
