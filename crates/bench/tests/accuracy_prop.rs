//! Metamorphic properties of the event-level scorer
//! ([`rfid_bench::EventScore`] / [`rfid_bench::ChangeDetection`]):
//!
//! 1. permuting event order (within an epoch, and in fact globally)
//!    leaves every score unchanged;
//! 2. scoring the ground truth against itself yields F1 = 1.0 exactly;
//! 3. adding spurious events (phantom tags, absent epochs, or
//!    locations beyond the match radius) can never raise precision.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_bench::{ChangeDetection, EventScore, EventScoreConfig};
use rfid_geom::Point3;
use rfid_sim::GroundTruth;
use rfid_stream::{Epoch, LocationEvent, TagId};

const MAX_EPOCH: u64 = 200;

/// A random ground truth: up to 8 objects, some arriving late, some
/// moving, some departing.
fn random_truth(rng: &mut StdRng) -> GroundTruth {
    let mut g = GroundTruth::new();
    let n = rng.gen_range(1usize..8);
    for t in 0..n {
        let tag = TagId(t as u64);
        let mut epoch = rng.gen_range(0u64..40);
        g.set_object(tag, Epoch(epoch), random_point(rng));
        // a few follow-up changes: moves, departures (only while
        // present), and re-arrivals
        let mut present = true;
        for _ in 0..rng.gen_range(0usize..3) {
            epoch += rng.gen_range(10u64..60);
            if present && rng.gen_bool(0.25) {
                g.remove_object(tag, Epoch(epoch));
                present = false;
            } else {
                g.set_object(tag, Epoch(epoch), random_point(rng));
                present = true;
            }
        }
    }
    g
}

fn random_point(rng: &mut StdRng) -> Point3 {
    Point3::new(2.0, rng.gen_range(0.0..20.0), 0.0)
}

/// Random events: a mix of matched, mislocated, and phantom.
fn random_events(rng: &mut StdRng, truth: &GroundTruth) -> Vec<LocationEvent> {
    let tags: Vec<TagId> = truth.object_tags().collect();
    let n = rng.gen_range(0usize..20);
    (0..n)
        .map(|_| {
            let epoch = Epoch(rng.gen_range(0u64..MAX_EPOCH));
            let tag = if rng.gen_bool(0.8) {
                tags[rng.gen_range(0..tags.len())]
            } else {
                TagId(10_000 + rng.gen_range(0u64..5)) // never in truth
            };
            let loc = match truth.object_at(tag, epoch) {
                Some(t) if rng.gen_bool(0.6) => Point3::new(
                    t.x,
                    t.y + rng.gen_range(-0.9..0.9), // near the truth
                    t.z,
                ),
                _ => random_point(rng),
            };
            LocationEvent::new(epoch, tag, loc)
        })
        .collect()
}

/// Fisher–Yates shuffle driven by the test RNG (the vendored rand
/// shim has no `SliceRandom::shuffle`).
fn shuffle(rng: &mut StdRng, events: &mut [LocationEvent]) {
    for i in (1..events.len()).rev() {
        let j = rng.gen_range(0usize..=i);
        events.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn permuting_events_leaves_scores_unchanged(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = random_truth(&mut rng);
        let events = random_events(&mut rng, &truth);
        let cfg = EventScoreConfig::default();
        let base = EventScore::score(&events, &truth, &cfg);
        let base_change = ChangeDetection::score(&events, &truth, &cfg);
        let mut permuted = events.clone();
        shuffle(&mut rng, &mut permuted);
        prop_assert_eq!(base, EventScore::score(&permuted, &truth, &cfg));
        prop_assert_eq!(base_change, ChangeDetection::score(&permuted, &truth, &cfg));
    }

    #[test]
    fn truth_against_itself_scores_perfect_f1(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = random_truth(&mut rng);
        // one event per object, at its exact true location, at an epoch
        // where it is present
        let mut events = Vec::new();
        for tag in truth.object_tags().collect::<Vec<_>>() {
            let epoch = (0..MAX_EPOCH)
                .map(Epoch)
                .find(|e| truth.object_at(tag, *e).is_some())
                .expect("every object is present at some epoch");
            events.push(LocationEvent::new(
                epoch,
                tag,
                truth.object_at(tag, epoch).unwrap(),
            ));
        }
        let s = EventScore::score(&events, &truth, &EventScoreConfig::default());
        prop_assert_eq!(s.precision, 1.0);
        prop_assert_eq!(s.recall, 1.0);
        prop_assert_eq!(s.f1, 1.0);
        prop_assert_eq!(s.confusion.mislocated, 0);
        prop_assert_eq!(s.confusion.phantom, 0);
        prop_assert_eq!(s.confusion.missed_tags, 0);
    }

    #[test]
    fn spurious_events_never_raise_precision(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = random_truth(&mut rng);
        let cfg = EventScoreConfig::default();
        let events = random_events(&mut rng, &truth);
        let base = EventScore::score(&events, &truth, &cfg);
        // spurious = guaranteed non-matching: unknown tags, or known
        // tags displaced far beyond the match radius
        let mut spoiled = events.clone();
        let tags: Vec<TagId> = truth.object_tags().collect();
        for _ in 0..rng.gen_range(1usize..10) {
            let epoch = Epoch(rng.gen_range(0u64..MAX_EPOCH));
            let spurious = if rng.gen_bool(0.5) {
                LocationEvent::new(epoch, TagId(20_000), random_point(&mut rng))
            } else {
                let tag = tags[rng.gen_range(0..tags.len())];
                let y_off = cfg.match_radius_xy + rng.gen_range(0.5..30.0);
                let loc = match truth.object_at(tag, epoch) {
                    Some(t) => Point3::new(t.x, t.y + y_off, t.z),
                    None => random_point(&mut rng), // phantom either way
                };
                LocationEvent::new(epoch, tag, loc)
            };
            spoiled.push(spurious);
        }
        shuffle(&mut rng, &mut spoiled);
        let spoiled_score = EventScore::score(&spoiled, &truth, &cfg);
        prop_assert!(
            spoiled_score.precision <= base.precision,
            "precision rose: {} -> {}",
            base.precision,
            spoiled_score.precision
        );
        // and recall never drops from adding events
        prop_assert!(spoiled_score.recall >= base.recall);
    }
}
