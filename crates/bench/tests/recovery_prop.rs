//! Property sweep over crash points: stop a durable run at a random
//! epoch (simulated in-process kill), optionally mangle the on-disk
//! state the way a real crash can (torn tail bytes, missing
//! manifest), and recovery must still replay to the **bit-identical**
//! event stream of an uninterrupted run.
//!
//! This is the shotgun to `kill_restart.rs`'s rifle: that test aborts
//! real child processes at a few chosen points; this one sweeps many
//! (crash epoch × checkpoint cadence × mangle) combinations cheaply in
//! one process.

use proptest::prelude::*;
use rfid_bench::fault::FaultPlan;
use rfid_bench::recovery::{
    canonical_scenario, reference_digest, resume, run_fresh, DurableRunOpts, LOG_SUBDIR,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rfid-recovery-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference digest of the `tiny` scenario, computed once for the
/// whole sweep.
fn tiny_golden() -> u64 {
    static GOLDEN: OnceLock<u64> = OnceLock::new();
    *GOLDEN.get_or_init(|| {
        let (sc, cfg) = canonical_scenario("tiny").unwrap();
        reference_digest(&sc, &cfg)
    })
}

/// What to do to the crashed run directory before recovery.
#[derive(Debug, Clone, Copy)]
enum Mangle {
    /// Nothing — the clean-kill case.
    None,
    /// Chop this many bytes off the newest live segment file (a torn
    /// final write the durability layer never acknowledged).
    TornTail(u64),
    /// Delete the manifest (crash before the very first commit, or
    /// operator damage); open must rebuild it from the files.
    MissingManifest,
}

fn apply(mangle: Mangle, dir: &Path) {
    let log = dir.join(LOG_SUBDIR);
    match mangle {
        Mangle::None => {}
        Mangle::TornTail(chop) => {
            // newest live segment = lexically greatest segment-*.log
            // (names are zero-padded)
            let newest = std::fs::read_dir(&log)
                .expect("log dir")
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("segment-") && n.ends_with(".log"))
                })
                .max()
                .expect("at least one segment file");
            let len = std::fs::metadata(&newest).expect("stat").len();
            let keep = len.saturating_sub(chop).max(1);
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&newest)
                .expect("open segment");
            f.set_len(keep).expect("chop tail");
        }
        Mangle::MissingManifest => {
            std::fs::remove_file(log.join("MANIFEST")).expect("remove manifest");
        }
    }
}

/// Maps two drawn integers onto a [`Mangle`] (the vendored proptest
/// shim has no `prop_oneof`): 0–1 → clean kill, 2–3 → torn tail of
/// `1 + chop` bytes (up to ~40 reaches into the epoch-complete mark
/// and often the record before it), 4 → missing manifest.
fn pick_mangle(sel: u64, chop: u64) -> Mangle {
    match sel {
        0 | 1 => Mangle::None,
        2 | 3 => Mangle::TornTail(1 + chop),
        _ => Mangle::MissingManifest,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (crash epoch, checkpoint cadence, mangle) combination
    /// recovers to the reference digest. The tiny trace ends at epoch
    /// 40, so crash epochs cover "before any checkpoint" through
    /// "after the last batch epoch's completion".
    #[test]
    fn any_crash_point_recovers_bit_identically(
        crash_epoch in 0u64..=40,
        every in 5u64..25,
        mangle_sel in 0u64..5,
        chop in 0u64..39,
    ) {
        let mangle = pick_mangle(mangle_sel, chop);
        let (sc, cfg) = canonical_scenario("tiny").unwrap();
        let opts = DurableRunOpts {
            checkpoint_every: every,
            ..DurableRunOpts::default()
        };
        let dir = temp_dir();
        let out = run_fresh(&sc, &cfg, &dir, &opts, Some(FaultPlan::KillAtEpoch(crash_epoch)))
            .expect("fresh run");
        prop_assert!(!out.completed, "kill epoch must be inside the trace");

        apply(mangle, &dir);

        let recovered = resume(&sc, &cfg, &dir, &opts, None).expect("recovery");
        prop_assert!(recovered.run.completed);
        prop_assert_eq!(
            recovered.run.digest,
            tiny_golden(),
            "crash at {} (every {}, {:?}) diverged: {:?}",
            crash_epoch,
            every,
            mangle,
            recovered
        );
        // a torn tail must actually have been repaired when we tore one
        if let Mangle::TornTail(_) = mangle {
            prop_assert!(
                recovered.log_recovery.truncated_bytes > 0
                    || recovered.resumed_from.is_none(),
                "torn bytes neither truncated nor outrun by a fresh replay"
            );
        }
        if let Mangle::MissingManifest = mangle {
            prop_assert!(recovered.log_recovery.rebuilt_manifest);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
