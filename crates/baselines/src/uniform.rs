//! The `uniform` baseline of §V-B: "uniformly randomly samples an
//! object's location over the overlapping area of the sensor model and
//! the shelf. This baseline is used as a bound on the worst-case
//! inference error."
//!
//! Being the worst-case bound, the estimate is a *single* uniform
//! sample over `read range ∩ shelf`, drawn at one of the tag's reading
//! epochs (reservoir-sampled so every reading is equally likely to be
//! the one used). Averaging the samples would smuggle smoothing into
//! the bound. Events are emitted when a tag stops being read for
//! `scope_gap` epochs (and at end of trace).

use crate::common::{nearest_shelf, sample_range_shelf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_geom::{Aabb, Point3};
use rfid_stream::{Epoch, EpochBatch, EventStats, LocationEvent, TagId};
use std::collections::{BTreeMap, BTreeSet};

/// The uniform-sampling baseline.
pub struct UniformBaseline {
    read_range: f64,
    shelves: Vec<Aabb>,
    scope_gap: u64,
    /// Per tag: (reservoir sample, #readings seen, last read, in scope).
    tags: BTreeMap<TagId, (Point3, usize, Epoch, bool)>,
    ignored: BTreeSet<TagId>,
    rng: StdRng,
}

impl UniformBaseline {
    /// Creates the baseline with the sensor read range and shelf area;
    /// `ignored` lists non-object (reference) tags.
    pub fn new(
        read_range: f64,
        shelves: Vec<Aabb>,
        ignored: impl IntoIterator<Item = TagId>,
        seed: u64,
    ) -> Self {
        assert!(!shelves.is_empty());
        Self {
            read_range,
            shelves,
            scope_gap: 20,
            tags: BTreeMap::new(),
            ignored: ignored.into_iter().collect(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Processes one epoch batch; returns events for tags that left
    /// scope.
    pub fn process_batch(&mut self, batch: &EpochBatch) -> Vec<LocationEvent> {
        let epoch = batch.epoch;
        let mut events = Vec::new();
        if let Some(rep) = batch.reader_report {
            for tag in &batch.readings {
                if self.ignored.contains(tag) {
                    continue;
                }
                let shelf = nearest_shelf(&self.shelves, &rep);
                let sample = sample_range_shelf(&rep.pos, self.read_range, shelf, &mut self.rng);
                let entry = self
                    .tags
                    .entry(*tag)
                    .or_insert_with(|| (sample, 0, epoch, true));
                // reservoir of size one over the tag's readings
                entry.1 += 1;
                if entry.1 == 1 || self.rng.gen_range(0..entry.1) == 0 {
                    entry.0 = sample;
                }
                entry.2 = epoch;
                entry.3 = true;
            }
        }
        // flush tags that have gone silent
        for (tag, (sample, count, last_read, in_scope)) in self.tags.iter_mut() {
            if *in_scope && epoch.since(*last_read) > self.scope_gap {
                *in_scope = false;
                events.push(
                    LocationEvent::new(epoch, *tag, *sample).with_stats(EventStats {
                        var: [0.0; 3],
                        support: *count as f64,
                    }),
                );
                *count = 0;
            }
        }
        events.sort_by_key(|e| e.tag);
        events
    }

    /// Flushes all pending tags.
    pub fn finalize(&mut self, epoch: Epoch) -> Vec<LocationEvent> {
        let mut events = Vec::new();
        for (tag, (sample, count, _, in_scope)) in self.tags.iter_mut() {
            if *in_scope {
                *in_scope = false;
                events.push(
                    LocationEvent::new(epoch, *tag, *sample).with_stats(EventStats {
                        var: [0.0; 3],
                        support: *count as f64,
                    }),
                );
                *count = 0;
            }
        }
        events.sort_by_key(|e| e.tag);
        events
    }

    /// Number of tags seen.
    pub fn num_tags(&self) -> usize {
        self.tags.len()
    }
}

impl rfid_stream::pipeline::InferenceStage for UniformBaseline {
    fn process_batch_into(&mut self, batch: &EpochBatch, out: &mut Vec<LocationEvent>) {
        out.extend(self.process_batch(batch));
    }

    fn finalize_into(&mut self, last_epoch: Epoch, out: &mut Vec<LocationEvent>) {
        out.extend(self.finalize(last_epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Pose;

    fn shelf() -> Aabb {
        Aabb::new(Point3::new(1.7, 0.0, 0.0), Point3::new(2.4, 20.0, 0.0))
    }

    fn batch(epoch: u64, reader_y: f64, tags: &[u64]) -> EpochBatch {
        EpochBatch {
            epoch: Epoch(epoch),
            readings: tags.iter().map(|t| TagId(*t)).collect(),
            reader_report: Some(Pose::new(Point3::new(0.0, reader_y, 0.0), 0.0)),
        }
    }

    #[test]
    fn estimates_lie_on_shelf() {
        let mut u = UniformBaseline::new(4.0, vec![shelf()], [], 1);
        for t in 0..10u64 {
            u.process_batch(&batch(t, 3.0 + 0.1 * t as f64, &[7]));
        }
        let events = u.finalize(Epoch(10));
        assert_eq!(events.len(), 1);
        assert!(shelf().contains(&events[0].location));
    }

    #[test]
    fn single_sample_spreads_over_shelf_depth() {
        // The estimate is one uniform sample: across seeds, x errors
        // relative to the shelf front average about half the depth —
        // the "strictly half of the shelf size in x" the paper notes.
        let mut sum = 0.0;
        let n = 200;
        for seed in 0..n {
            let mut u = UniformBaseline::new(6.0, vec![shelf()], [], seed);
            for t in 0..20u64 {
                u.process_batch(&batch(t, 3.0, &[7]));
            }
            let events = u.finalize(Epoch(20));
            sum += (events[0].location.x - 1.7).abs(); // tag at shelf front
        }
        let mean = sum / n as f64;
        // shelf depth 0.7 => expected mean error ~0.35
        assert!((mean - 0.35).abs() < 0.08, "mean x error {mean}");
    }

    #[test]
    fn scope_gap_emits_intermediate_event() {
        let mut u = UniformBaseline::new(4.0, vec![shelf()], [], 3);
        let mut events = Vec::new();
        for t in 0..5u64 {
            events.extend(u.process_batch(&batch(t, 3.0, &[7])));
        }
        for t in 5..40u64 {
            events.extend(u.process_batch(&batch(t, 3.0, &[])));
        }
        assert_eq!(events.len(), 1, "event on leaving scope");
        assert_eq!(u.finalize(Epoch(40)).len(), 0, "nothing left to flush");
    }

    #[test]
    fn ignored_tags_skipped() {
        let mut u = UniformBaseline::new(4.0, vec![shelf()], [TagId(9)], 4);
        u.process_batch(&batch(0, 3.0, &[9]));
        assert_eq!(u.num_tags(), 0);
    }
}
