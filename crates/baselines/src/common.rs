//! Shared machinery for the baselines: sampling a location over the
//! intersection of the reader's read range and the shelf area.
//!
//! Neither baseline models the reader's orientation, so the "read
//! range" is a disc of radius `range` around the *reported* reader
//! location (SMURF has no reader filter — "sampling of object location
//! is always performed from the reported reader location", which is
//! exactly why it cannot correct dead-reckoning drift).

use rand::Rng;
use rfid_geom::{Aabb, Point3, Pose};

/// Samples a point uniformly over `shelf ∩ disc(center, range)` in the
/// XY plane (z fixed to the shelf's z). Rejection-samples from the
/// intersection's bounding box; falls back to the disc-clamped shelf
/// point nearest `center` when the intersection is numerically empty.
pub fn sample_range_shelf<R: Rng + ?Sized>(
    center: &Point3,
    range: f64,
    shelf: &Aabb,
    rng: &mut R,
) -> Point3 {
    let z = shelf.min.z;
    // bounding box of the intersection
    let lo_x = shelf.min.x.max(center.x - range);
    let hi_x = shelf.max.x.min(center.x + range);
    let lo_y = shelf.min.y.max(center.y - range);
    let hi_y = shelf.max.y.min(center.y + range);
    if lo_x <= hi_x && lo_y <= hi_y {
        for _ in 0..64 {
            let x = if hi_x > lo_x {
                rng.gen_range(lo_x..=hi_x)
            } else {
                lo_x
            };
            let y = if hi_y > lo_y {
                rng.gen_range(lo_y..=hi_y)
            } else {
                lo_y
            };
            let p = Point3::new(x, y, z);
            if p.dist_xy(center) <= range {
                return p;
            }
        }
    }
    // fallback: project the center onto the shelf box
    Point3::new(
        center.x.clamp(shelf.min.x, shelf.max.x),
        center.y.clamp(shelf.min.y, shelf.max.y),
        z,
    )
}

/// Picks the shelf area the reader is *facing* — used when the
/// deployment has several candidate sampling areas (the lab's two
/// rows): a reading is attributed to the row in front of the antenna.
/// Among the shelves ahead of the reader (positive projection of the
/// center onto the heading), the nearest wins; if none is ahead, the
/// nearest overall wins.
pub fn nearest_shelf<'a>(shelves: &'a [Aabb], pose: &Pose) -> &'a Aabb {
    assert!(!shelves.is_empty(), "at least one shelf area required");
    let heading = rfid_geom::angles::heading_vec(pose.phi);
    let key = |b: &Aabb| -> (bool, f64) {
        let to_center = b.center() - pose.pos;
        let ahead = to_center.dot(&heading) > 0.0;
        (ahead, b.center().dist_xy(&pose.pos))
    };
    shelves
        .iter()
        .min_by(|a, b| {
            let (aa, da) = key(a);
            let (ba, db) = key(b);
            // facing shelves sort first, then by distance
            ba.cmp(&aa)
                .then(da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal))
        })
        .expect("non-empty")
}

/// Running mean of sampled points (the "average of all sampled
/// locations" step of the augmented SMURF).
#[derive(Debug, Clone, Default)]
pub struct LocationAccumulator {
    sum: (f64, f64, f64),
    n: usize,
}

impl LocationAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, p: Point3) {
        self.sum.0 += p.x;
        self.sum.1 += p.y;
        self.sum.2 += p.z;
        self.n += 1;
    }

    /// Number of samples so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no samples were pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The mean, or `None` when empty.
    pub fn mean(&self) -> Option<Point3> {
        if self.n == 0 {
            return None;
        }
        let n = self.n as f64;
        Some(Point3::new(self.sum.0 / n, self.sum.1 / n, self.sum.2 / n))
    }

    /// Clears the accumulator (new scope pass).
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shelf() -> Aabb {
        Aabb::new(Point3::new(2.0, 0.0, 0.0), Point3::new(2.5, 20.0, 0.0))
    }

    #[test]
    fn samples_lie_in_intersection() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = Point3::new(0.0, 5.0, 0.0);
        for _ in 0..500 {
            let p = sample_range_shelf(&c, 4.0, &shelf(), &mut rng);
            assert!(shelf().contains(&p), "off shelf: {p:?}");
            assert!(p.dist_xy(&c) <= 4.0 + 1e-9, "out of range: {p:?}");
        }
    }

    #[test]
    fn empty_intersection_falls_back_to_projection() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = Point3::new(0.0, 100.0, 0.0); // far beyond the shelf
        let p = sample_range_shelf(&c, 1.0, &shelf(), &mut rng);
        assert_eq!(p, Point3::new(2.0, 20.0, 0.0));
    }

    #[test]
    fn accumulator_averages() {
        let mut a = LocationAccumulator::new();
        assert!(a.mean().is_none());
        a.push(Point3::new(0.0, 0.0, 0.0));
        a.push(Point3::new(2.0, 4.0, 0.0));
        let m = a.mean().unwrap();
        assert_eq!(m, Point3::new(1.0, 2.0, 0.0));
        assert_eq!(a.len(), 2);
        a.clear();
        assert!(a.is_empty());
    }
}
