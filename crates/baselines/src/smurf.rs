//! SMURF (Jeffery et al., VLDB J. 2007) with the paper's location
//! augmentation.
//!
//! SMURF treats RFID smoothing as statistical sampling: each epoch the
//! reader "samples" the tag with some read probability `p`. Per tag it
//! keeps an adaptive window of the last `w` epochs:
//!
//! * **completeness** — the window must be long enough that a present
//!   tag is read at least once with probability `1 - δ`:
//!   `w ≥ ln(1/δ) / p̂` (the π-estimator sizes `p̂` from the window);
//! * **transition detection** — if the reads observed in the window are
//!   statistically below what `p̂` predicts (binomial mean minus 2σ),
//!   the tag likely left the range and the window shrinks to react.
//!
//! A tag is *in scope* at epoch `t` if its window contains at least one
//! read. The paper's augmentation then samples a location uniformly
//! over `read range ∩ shelf` at the reported reader position for every
//! in-scope epoch, and averages those samples into a location estimate
//! when the tag leaves scope.

use crate::common::{nearest_shelf, sample_range_shelf, LocationAccumulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_geom::{Aabb, Pose};
use rfid_stream::{Epoch, EpochBatch, EventStats, LocationEvent, TagId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// SMURF tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SmurfConfig {
    /// Completeness confidence parameter δ (paper default 0.05).
    pub delta: f64,
    /// Maximum smoothing window, epochs.
    pub max_window: usize,
    /// Read range (feet) used for location sampling — the paper feeds
    /// SMURF "the read range based on our learned model".
    pub read_range: f64,
    /// Shelf areas for location sampling (the "imagined shelf" — one
    /// box per shelf row; samples use the row nearest the reported
    /// reader location).
    pub shelves: Vec<Aabb>,
    /// RNG seed for the location sampling.
    pub seed: u64,
}

impl SmurfConfig {
    /// Defaults matching the lab comparison.
    pub fn new(read_range: f64, shelves: Vec<Aabb>) -> Self {
        assert!(!shelves.is_empty());
        Self {
            delta: 0.05,
            max_window: 25,
            read_range,
            shelves,
            seed: 0xbeef,
        }
    }
}

#[derive(Debug, Clone)]
struct TagState {
    /// Presence bits of the last `window` epochs (front = oldest).
    history: VecDeque<bool>,
    /// Current adaptive window size.
    window: usize,
    /// Location samples of the current in-scope run.
    acc: LocationAccumulator,
    in_scope: bool,
    last_epoch_read: Epoch,
}

impl TagState {
    fn new() -> Self {
        Self {
            history: VecDeque::new(),
            window: 2,
            acc: LocationAccumulator::new(),
            in_scope: false,
            last_epoch_read: Epoch(0),
        }
    }

    /// Per-epoch read-rate estimate over the current window (the
    /// π-estimator simplified to the Bernoulli MLE).
    fn p_hat(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let reads = self.history.iter().filter(|b| **b).count();
        reads as f64 / self.history.len() as f64
    }
}

/// The SMURF cleaning baseline.
pub struct Smurf {
    config: SmurfConfig,
    /// Ordered by tag so the per-epoch location-sampling RNG draws are
    /// assigned to tags deterministically: with a hash map here, the
    /// iteration (and thus draw) order changed per process, and two
    /// identical runs scored differently against ground truth.
    tags: BTreeMap<TagId, TagState>,
    rng: StdRng,
    /// Set of tag ids to ignore (shelf/reference tags).
    ignored: BTreeSet<TagId>,
}

impl Smurf {
    /// Creates a SMURF instance. `ignored` lists tag ids that are not
    /// objects (reference tags).
    pub fn new(config: SmurfConfig, ignored: impl IntoIterator<Item = TagId>) -> Self {
        let seed = config.seed;
        Self {
            config,
            tags: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            ignored: ignored.into_iter().collect(),
        }
    }

    /// Current adaptive window of a tag (diagnostics).
    pub fn window_of(&self, tag: TagId) -> Option<usize> {
        self.tags.get(&tag).map(|s| s.window)
    }

    /// Whether SMURF currently believes the tag is in scope.
    pub fn in_scope(&self, tag: TagId) -> bool {
        self.tags.get(&tag).map(|s| s.in_scope).unwrap_or(false)
    }

    /// Processes one epoch batch; returns location events for tags that
    /// left scope this epoch.
    pub fn process_batch(&mut self, batch: &EpochBatch) -> Vec<LocationEvent> {
        let epoch = batch.epoch;
        let read_now: BTreeSet<TagId> = batch
            .readings
            .iter()
            .filter(|t| !self.ignored.contains(t))
            .copied()
            .collect();
        // register new tags
        for tag in &read_now {
            self.tags.entry(*tag).or_insert_with(TagState::new);
        }

        let reported = batch.reader_report;
        let mut events = Vec::new();
        for (tag, state) in self.tags.iter_mut() {
            let read = read_now.contains(tag);
            if read {
                state.last_epoch_read = epoch;
            }

            // slide the window
            state.history.push_back(read);
            while state.history.len() > state.window {
                state.history.pop_front();
            }

            // --- adaptive sizing (π-estimator) -----------------------
            let p = state.p_hat();
            if p > 0.0 {
                // completeness requirement
                let w_req = ((1.0 / self.config.delta).ln() / p).ceil() as usize;
                let w_req = w_req.clamp(1, self.config.max_window);
                // transition detection: estimate the read rate from the
                // older half of the window, then check whether the
                // recent half saw statistically fewer reads than that
                // rate predicts (binomial mean minus 2σ)
                let len = state.history.len();
                let half = len / 2;
                let transition = if half >= 1 {
                    let older = len - half;
                    let older_reads =
                        state.history.iter().take(older).filter(|b| **b).count() as f64;
                    // Laplace-smoothed estimate: a single-epoch older
                    // half must not yield p1 = 1 with zero variance
                    let p1 = (older_reads + 1.0) / (older as f64 + 2.0);
                    let recent_reads =
                        state.history.iter().skip(older).filter(|b| **b).count() as f64;
                    let expected = p1 * half as f64;
                    let sigma = (half as f64 * p1 * (1.0 - p1)).sqrt();
                    p1 > 0.0 && recent_reads < expected - 2.0 * sigma
                } else {
                    false
                };
                if transition {
                    state.window = (state.window / 2).max(1);
                } else if state.window < w_req {
                    state.window = (state.window * 2).clamp(1, w_req);
                } else {
                    state.window = w_req;
                }
            }

            // --- smoothing decision ----------------------------------
            let present = state.history.iter().any(|b| *b);
            if present {
                state.in_scope = true;
                // augmented SMURF: sample a location for this epoch
                if let Some(rep) = reported {
                    let pose: Pose = rep;
                    let shelf = nearest_shelf(&self.config.shelves, &pose);
                    let p =
                        sample_range_shelf(&pose.pos, self.config.read_range, shelf, &mut self.rng);
                    state.acc.push(p);
                }
            } else if state.in_scope {
                // left scope: average the samples into an event
                state.in_scope = false;
                if let Some(mean) = state.acc.mean() {
                    events.push(
                        LocationEvent::new(epoch, *tag, mean).with_stats(EventStats {
                            var: [0.0; 3],
                            support: state.acc.len() as f64,
                        }),
                    );
                }
                state.acc.clear();
            }
        }
        events.sort_by_key(|e| e.tag);
        events
    }

    /// Flushes tags still in scope at end of trace.
    pub fn finalize(&mut self, epoch: Epoch) -> Vec<LocationEvent> {
        let mut events = Vec::new();
        for (tag, state) in self.tags.iter_mut() {
            if state.in_scope {
                state.in_scope = false;
                if let Some(mean) = state.acc.mean() {
                    events.push(
                        LocationEvent::new(epoch, *tag, mean).with_stats(EventStats {
                            var: [0.0; 3],
                            support: state.acc.len() as f64,
                        }),
                    );
                }
                state.acc.clear();
            }
        }
        events.sort_by_key(|e| e.tag);
        events
    }
}

impl rfid_stream::pipeline::InferenceStage for Smurf {
    fn process_batch_into(&mut self, batch: &EpochBatch, out: &mut Vec<LocationEvent>) {
        out.extend(self.process_batch(batch));
    }

    fn finalize_into(&mut self, last_epoch: Epoch, out: &mut Vec<LocationEvent>) {
        out.extend(self.finalize(last_epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Point3;

    fn shelf() -> Aabb {
        Aabb::new(Point3::new(1.7, 0.0, 0.0), Point3::new(2.4, 20.0, 0.0))
    }

    fn batch(epoch: u64, reader_y: f64, tags: &[u64]) -> EpochBatch {
        EpochBatch {
            epoch: Epoch(epoch),
            readings: tags.iter().map(|t| TagId(*t)).collect(),
            reader_report: Some(Pose::new(Point3::new(0.0, reader_y, 0.0), 0.0)),
        }
    }

    fn smurf() -> Smurf {
        Smurf::new(SmurfConfig::new(4.0, vec![shelf()]), [])
    }

    #[test]
    fn missed_reads_smoothed_within_window() {
        let mut s = smurf();
        // read, miss, read pattern: tag should stay in scope throughout
        s.process_batch(&batch(0, 3.0, &[7]));
        s.process_batch(&batch(1, 3.1, &[]));
        let _ = s.process_batch(&batch(2, 3.2, &[7]));
        assert!(s.in_scope(TagId(7)));
    }

    #[test]
    fn event_emitted_when_leaving_scope() {
        let mut s = smurf();
        let mut events = Vec::new();
        for t in 0..10u64 {
            events.extend(s.process_batch(&batch(t, 3.0 + t as f64 * 0.1, &[7])));
        }
        // long silence flushes the tag out of scope
        for t in 10..40u64 {
            events.extend(s.process_batch(&batch(t, 4.0 + t as f64 * 0.1, &[])));
        }
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.tag, TagId(7));
        // location averaged over range∩shelf samples near the scan path
        assert!(shelf().contains(&e.location), "location {:?}", e.location);
        assert!(!s.in_scope(TagId(7)));
    }

    #[test]
    fn window_grows_under_low_read_rate() {
        let mut s = smurf();
        // alternate read/miss: p̂ ≈ 0.5 => required window ~ 6
        for t in 0..30u64 {
            let tags: Vec<u64> = if t % 2 == 0 { vec![7] } else { vec![] };
            s.process_batch(&batch(t, 3.0, &tags));
        }
        let w = s.window_of(TagId(7)).unwrap();
        assert!(w >= 4, "window too small for p=0.5: {w}");
    }

    #[test]
    fn window_shrinks_on_transition() {
        let mut s = smurf();
        // high read rate, then gone
        for t in 0..12u64 {
            s.process_batch(&batch(t, 3.0, &[7]));
        }
        let w_before = s.window_of(TagId(7)).unwrap();
        for t in 12..18u64 {
            s.process_batch(&batch(t, 3.0, &[]));
        }
        let w_after = s.window_of(TagId(7)).unwrap();
        assert!(
            w_after < w_before.max(2),
            "window should shrink on departure: {w_before} -> {w_after}"
        );
    }

    #[test]
    fn ignored_tags_produce_nothing() {
        let mut s = Smurf::new(SmurfConfig::new(4.0, vec![shelf()]), [TagId(99)]);
        for t in 0..10u64 {
            s.process_batch(&batch(t, 3.0, &[99]));
        }
        let events = s.finalize(Epoch(10));
        assert!(events.is_empty());
    }

    #[test]
    fn finalize_flushes_in_scope_tags() {
        let mut s = smurf();
        for t in 0..5u64 {
            s.process_batch(&batch(t, 3.0, &[7]));
        }
        let events = s.finalize(Epoch(5));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tag, TagId(7));
    }

    #[test]
    fn cannot_correct_reported_location_bias() {
        // The reported reader location is biased along y; SMURF samples
        // around the *reported* location, so its estimate inherits the
        // bias — the structural weakness our system fixes (§V-C).
        let truth_y = 5.0;
        let bias = 2.0;
        let mut s = smurf();
        for t in 0..8u64 {
            // reader is truly at y = 4..5 but reports y + bias
            let _ = s.process_batch(&batch(t, truth_y + bias, &[7]));
        }
        let events = s.finalize(Epoch(8));
        let est = events[0].location;
        assert!(
            (est.y - (truth_y + bias)).abs() < 1.5,
            "estimate should sit near the biased report, got y = {}",
            est.y
        );
    }
}
