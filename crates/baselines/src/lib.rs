//! Baseline RFID cleaning approaches the paper compares against.
//!
//! * [`smurf::Smurf`] — SMURF (Jeffery et al., VLDB J. 2007): per-tag
//!   adaptive smoothing windows sized by a π-estimator, *augmented* with
//!   location sampling exactly as §V-C describes ("if SMURF decides that
//!   the tag is still in range ... a location of the tag is obtained by
//!   randomly sampling over the intersection of the read range and the
//!   shelf; ... if SMURF decides that the tag is no longer in scope, all
//!   sampled locations ... are averaged").
//! * [`uniform::UniformBaseline`] — the worst-case bound of §V-B:
//!   uniformly samples the object location over the overlap of the
//!   sensor read range and the shelf.
//!
//! Both consume the same epoch batches as the inference engine and
//! produce the same event type, so experiments score all three systems
//! identically.

pub mod common;
pub mod smurf;
pub mod uniform;

pub use smurf::{Smurf, SmurfConfig};
pub use uniform::UniformBaseline;
