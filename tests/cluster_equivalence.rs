//! The cluster's hard gate over real processes: for every golden-trace
//! scenario and every worker count N ∈ {1, 2, 4}, a launched cluster
//! (router, N workers, coordinator — real child processes, real
//! sockets) must merge to exactly the event-stream digest committed
//! under `tests/golden/` — the same digest the single-process engine
//! is pinned to. One digest, three code paths: engine, durability
//! harness, cluster.

use rfid_cluster::LocalCluster;
use std::path::PathBuf;

/// The committed golden digest (the `hash:` line of the digest file).
fn committed_digest(name: &str) -> u64 {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden digest {}: {e}", path.display()));
    let line = text
        .lines()
        .find_map(|l| l.strip_prefix("hash: 0x"))
        .unwrap_or_else(|| panic!("{}: no hash line", path.display()));
    u64::from_str_radix(line.trim(), 16).expect("well-formed hash")
}

#[test]
fn cluster_reproduces_every_committed_golden_digest() {
    for scenario in ["small_warehouse", "low_read_rate", "moving_object"] {
        let expected = committed_digest(scenario);
        for n in [1usize, 2, 4] {
            let outcome = LocalCluster::new(scenario, n)
                .run()
                .unwrap_or_else(|e| panic!("{scenario} with {n} workers: {e}"));
            assert!(outcome.events > 0, "{scenario}: no events merged");
            assert_eq!(
                outcome.digest, expected,
                "{scenario} with {n} workers: merged digest 0x{:016x} diverged \
                 from the committed golden 0x{expected:016x}",
                outcome.digest
            );
        }
    }
}
