//! The paper's §IV claims, asserted end to end at small scale:
//!
//! 1. factorization beats the unfactorized filter at comparable budget;
//! 2. spatial indexing cuts per-epoch work without hurting accuracy;
//! 3. belief compression cuts memory without hurting accuracy.

use rfid_repro::core::engine::run_engine;
use rfid_repro::core::BasicParticleFilter;
use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;

fn mean_err(events: &[LocationEvent], truth: &rfid_repro::sim::GroundTruth) -> f64 {
    let mut s = 0.0;
    let mut n = 0;
    for e in events {
        if let Some(t) = truth.object_at(e.tag, e.epoch) {
            s += e.location.dist_xy(&t);
            n += 1;
        }
    }
    assert!(n > 0);
    s / n as f64
}

#[test]
fn factorization_beats_unfactorized_at_same_total_budget() {
    // 30 objects; the factored filter gets 500 particles per object,
    // the unfactorized filter the same *total* budget (15,000 joint
    // particles). The paper's Fig 3(a) argument predicts the factored
    // filter wins because good per-object hypotheses combine.
    let sc = scenario::scalability_trace(30, 4040);
    let batches = sc.trace.epoch_batches();
    let model = || {
        JointModel::with_sensor(
            ConeSensor::paper_default(),
            ModelParams::default_warehouse(),
        )
    };

    let mut cfg = FilterConfig::factored_default();
    cfg.particles_per_object = 500;
    cfg.report_delay_epochs = 30;
    let mut engine =
        InferenceEngine::new(model(), sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg).unwrap();
    let factored = run_engine(&mut engine, &batches);

    let mut basic = BasicParticleFilter::new(
        model(),
        sc.layout.clone(),
        sc.trace.shelf_tags.clone(),
        cfg,
        15_000,
    )
    .unwrap();
    let mut unfactored = Vec::new();
    for b in &batches {
        unfactored.extend(basic.process_batch(b));
    }
    unfactored.extend(basic.finalize(batches.last().unwrap().epoch));

    let e_f = mean_err(&factored, &sc.trace.truth);
    let e_u = mean_err(&unfactored, &sc.trace.truth);
    assert!(
        e_f < e_u,
        "factored ({e_f:.2} ft) should beat unfactorized ({e_u:.2} ft) at equal budget"
    );
}

#[test]
fn spatial_index_cuts_work_not_accuracy() {
    let sc = scenario::scalability_trace(150, 4141);
    let batches = sc.trace.epoch_batches();
    let run = |use_index: bool| {
        let mut cfg = FilterConfig::factored_default();
        cfg.particles_per_object = 300;
        cfg.use_spatial_index = use_index;
        cfg.report_delay_epochs = 30;
        let model = JointModel::with_sensor(
            ConeSensor::paper_default(),
            ModelParams::default_warehouse(),
        );
        let mut engine =
            InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
                .unwrap();
        let events = run_engine(&mut engine, &batches);
        (
            mean_err(&events, &sc.trace.truth),
            engine.stats().object_updates,
        )
    };
    let (err_plain, updates_plain) = run(false);
    let (err_indexed, updates_indexed) = run(true);
    assert!(
        updates_indexed * 3 < updates_plain,
        "index should cut object updates by a large factor: {updates_indexed} vs {updates_plain}"
    );
    assert!(
        err_indexed < err_plain + 0.3,
        "index must not hurt accuracy: {err_plain:.2} -> {err_indexed:.2}"
    );
}

#[test]
fn compression_cuts_memory_not_accuracy() {
    let sc = scenario::scalability_trace(60, 4242);
    let batches = sc.trace.epoch_batches();
    let run = |compress: bool| {
        let mut cfg = FilterConfig::indexed_default();
        cfg.particles_per_object = 300;
        cfg.report_delay_epochs = 30;
        if compress {
            cfg.compression = CompressionPolicy::paper_default();
        }
        let model = JointModel::with_sensor(
            ConeSensor::paper_default(),
            ModelParams::default_warehouse(),
        );
        let mut engine =
            InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
                .unwrap();
        let events = run_engine(&mut engine, &batches);
        (
            mean_err(&events, &sc.trace.truth),
            engine.memory_bytes(),
            engine.stats().compressions,
        )
    };
    let (err_off, mem_off, _) = run(false);
    let (err_on, mem_on, compressions) = run(true);
    assert!(compressions > 0, "compression never fired");
    assert!(
        mem_on * 3 < mem_off,
        "compression should shrink belief memory: {mem_on} vs {mem_off} bytes"
    );
    assert!(
        err_on < err_off + 0.4,
        "compression must not obviously degrade accuracy: {err_off:.2} -> {err_on:.2}"
    );
}
