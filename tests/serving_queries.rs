//! The serving acceptance contract: on a real engine trace, with
//! ingestion running on its own thread and query threads hammering the
//! shared store **while it streams**, the store's `Trail` and
//! `SnapshotAt` answers end up bit-identical to what the in-process
//! `TrailSink`/`SnapshotSink` computed from the very same pipeline run.

use rfid_repro::prelude::*;
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{answer, Query, QueryResponse};
use rfid_stream::pipeline::sinks::{SnapshotSink, StoreSink, TrailSink};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

#[test]
fn store_answers_match_sinks_under_concurrent_ingestion() {
    let sc = rfid_repro::sim::scenario::tag_churn_trace(4004);
    let items: Vec<StreamItem> = sc.trace.stream().collect();
    let epoch_len = sc.trace.epoch_len;

    let model = JointModel::with_sensor(
        ConeSensor::paper_default(),
        ModelParams::default_warehouse(),
    );
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 150;
    cfg.report_delay_epochs = 30;
    let engine = InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
        .expect("valid config");

    let store = Arc::new(RwLock::new(EventStore::new(
        // default (sink-identical) semantics, small segments so the
        // snapshot index and sealing actually engage on this trace
        StoreConfig::default().with_segment_epochs(16),
    )));
    let store_sink = StoreSink::new(Arc::clone(&store));
    let done = Arc::new(AtomicBool::new(false));

    // ingestion thread: the live pipeline, fanning events into the
    // in-process sinks and the shared store in the same run
    let ingest = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let sink = ((TrailSink::new(1 << 20), SnapshotSink::new(1)), store_sink);
            let mut pipeline = Pipeline::new(epoch_len, engine, sink);
            let stats = pipeline.run_to_completion(&mut items.into_iter());
            done.store(true, Ordering::SeqCst);
            let (_engine, ((trail, snapshot), _), _) = pipeline.into_parts();
            (trail, snapshot, stats)
        })
    };

    // query threads: mixed queries against the store while it fills
    let queriers: Vec<_> = (0..2)
        .map(|t| {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut answered = 0u64;
                let mut i = 0u64;
                // keep querying while ingestion runs; in any case issue
                // enough queries to exercise the shared lock
                while !done.load(Ordering::SeqCst) || answered < 50 {
                    let q = match (t + i) % 3 {
                        0 => Query::CurrentLocation(TagId(i % 16)),
                        1 => Query::SnapshotAt(Epoch(i % 128)),
                        _ => Query::Trail {
                            tag: TagId(i % 16),
                            from: Epoch(0),
                            to: Epoch(i % 256),
                        },
                    };
                    let guard = store.read().unwrap();
                    match answer(&guard, &q) {
                        QueryResponse::Rows(_) => answered += 1,
                        QueryResponse::Error(e) => panic!("mid-ingestion error: {e}"),
                    }
                    drop(guard);
                    i += 1;
                    // yield so the single-core CI box can make
                    // ingestion progress between queries
                    std::thread::yield_now();
                }
                answered
            })
        })
        .collect();

    let (trail_sink, snapshot_sink, stats) = ingest.join().expect("ingestion thread");
    let answered: u64 = queriers
        .into_iter()
        .map(|q| q.join().expect("query thread"))
        .sum();
    assert!(stats.events > 0, "the engine emitted events");
    assert!(
        answered > 0,
        "queries must actually have interleaved with ingestion"
    );

    let store = store.read().unwrap();
    assert!(store.is_finished());

    // ---- Trail: bit-identical to TrailSink, every tag ----
    let mut tags: Vec<TagId> = (0..16).map(TagId).collect();
    tags.sort_unstable();
    let mut tags_with_trails = 0;
    for &tag in &tags {
        let from_sink: Vec<(Epoch, Point3)> = trail_sink.trail(tag).copied().collect();
        let from_store: Vec<(Epoch, Point3)> = store
            .trail(tag, Epoch(0), Epoch(u64::MAX))
            .unwrap()
            .into_iter()
            .map(|s| (s.event.epoch, s.event.location))
            .collect();
        assert_eq!(from_sink.len(), from_store.len(), "trail arity of {tag}");
        for ((ea, la), (eb, lb)) in from_sink.iter().zip(&from_store) {
            assert_eq!(ea, eb, "trail epoch of {tag}");
            assert_eq!(la.x.to_bits(), lb.x.to_bits(), "trail x of {tag}");
            assert_eq!(la.y.to_bits(), lb.y.to_bits(), "trail y of {tag}");
            assert_eq!(la.z.to_bits(), lb.z.to_bits(), "trail z of {tag}");
        }
        tags_with_trails += usize::from(!from_sink.is_empty());
    }
    assert!(tags_with_trails >= 12, "churn trace covers most tags");

    // ---- SnapshotAt: bit-identical to every SnapshotSink emission ----
    let emissions = snapshot_sink.emissions();
    assert!(emissions.len() > 100, "every-epoch cadence on a long trace");
    for (i, (time, relation)) in emissions.iter().enumerate() {
        let at = if i + 1 == emissions.len() {
            Epoch(u64::MAX) // the final (possibly flush) relation
        } else {
            Epoch(*time as u64)
        };
        let rows = store.snapshot_at(at).expect("unbounded retention");
        assert_eq!(relation.len(), rows.len(), "snapshot arity at t={time}");
        for ((tag, loc), row) in relation.iter().zip(&rows) {
            assert_eq!(*tag, row.tag, "snapshot tag order at t={time}");
            assert_eq!(loc.x.to_bits(), row.location.x.to_bits(), "x at t={time}");
            assert_eq!(loc.y.to_bits(), row.location.y.to_bits(), "y at t={time}");
            assert_eq!(loc.z.to_bits(), row.location.z.to_bits(), "z at t={time}");
        }
    }
}
