//! Cross-crate calibration test: EM self-calibration (rfid-learn) on a
//! simulated trace (rfid-sim) improves inference (rfid-core).

use rfid_repro::core::engine::run_engine;
use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;

fn mean_err(events: &[LocationEvent], truth: &rfid_repro::sim::GroundTruth) -> f64 {
    let mut s = 0.0;
    let mut n = 0;
    for e in events {
        if let Some(t) = truth.object_at(e.tag, e.epoch) {
            s += e.location.dist_xy(&t);
            n += 1;
        }
    }
    assert!(n > 0);
    s / n as f64
}

#[test]
fn calibrated_model_performs_on_held_out_trace() {
    // train on one trace, evaluate on a fresh one (different seed)
    let train = scenario::small_trace(16, 4, 1000);
    let mut init = ModelParams::default_warehouse();
    init.sensor = SensorParams {
        a: [2.0, -0.2, -0.05],
        b: [-0.1, -0.5],
    };
    let em_cfg = EmConfig {
        iterations: 3,
        ..EmConfig::default()
    };
    let learned = calibrate(
        &train.trace.epoch_batches(),
        &train.trace.shelf_tags,
        &train.layout,
        init,
        &em_cfg,
    )
    .params;

    let test = scenario::small_trace(10, 4, 2000);
    let mut cfg = FilterConfig::factored_default();
    cfg.particles_per_object = 800;

    let run = |params: ModelParams| {
        let mut engine = InferenceEngine::new(
            JointModel::new(params),
            test.layout.clone(),
            test.trace.shelf_tags.clone(),
            cfg,
        )
        .unwrap();
        mean_err(
            &run_engine(&mut engine, &test.trace.epoch_batches()),
            &test.trace.truth,
        )
    };

    let err_init = run(init);
    let err_learned = run(learned);
    assert!(
        err_learned < 1.0,
        "calibrated model should localize within a foot, got {err_learned}"
    );
    assert!(
        err_learned <= err_init + 0.1,
        "calibration should not hurt: {err_init} -> {err_learned}"
    );
}

#[test]
fn learned_coefficients_respect_physical_signs() {
    // the paper expects the decay coefficients to be negative
    let train = scenario::small_trace(16, 4, 1234);
    let em_cfg = EmConfig {
        iterations: 3,
        ..EmConfig::default()
    };
    let learned = calibrate(
        &train.trace.epoch_batches(),
        &train.trace.shelf_tags,
        &train.layout,
        ModelParams::default_warehouse(),
        &em_cfg,
    )
    .params;
    let [_, a1, a2] = learned.sensor.a;
    let [b1, b2] = learned.sensor.b;
    assert!(
        a1 <= 1e-9 && a2 <= 1e-9,
        "distance decay not negative: {a1}, {a2}"
    );
    assert!(
        b1 <= 1e-9 && b2 <= 1e-9,
        "angle decay not negative: {b1}, {b2}"
    );
}
