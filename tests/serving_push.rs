//! The push-serving acceptance contract: on a real engine trace, the
//! union of PUSH frames every TCP subscriber receives equals the
//! in-process `LocationChangeSink`'s delta stream **bit-for-bit**
//! (floats survive the wire via round-trip `Display`), filters select
//! exactly the matching sub-stream, and an induced-lag subscriber
//! accounts for every row: delivered rows + `LAGGED` drop counts =
//! the full delta stream, with exactly one notice for the overflow
//! run.

use rfid_repro::prelude::*;
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{
    serve_with, Frame, HubConfig, QueryClient, ServerConfig, SubscriptionFilter, SubscriptionHub,
};
use rfid_stream::pipeline::sinks::{LocationChangeSink, LocationUpdate, StoreSink};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A row key that compares floats by bits.
type RowKey = (u64, u64, u64, u64, u64);

fn key_of_update(u: &LocationUpdate) -> RowKey {
    (
        u.tag.0,
        u.epoch.0,
        u.location.x.to_bits(),
        u.location.y.to_bits(),
        u.location.z.to_bits(),
    )
}

fn key_of_row(r: &rfid_serve::LocationRow) -> RowKey {
    (
        r.tag.0,
        r.epoch.0,
        r.location.x.to_bits(),
        r.location.y.to_bits(),
        r.location.z.to_bits(),
    )
}

/// Collects a subscriber's frames until the stream has been quiet past
/// the done flag.
fn drain_pushes(
    mut client: QueryClient,
    done: Arc<AtomicBool>,
) -> std::thread::JoinHandle<Vec<Frame>> {
    std::thread::spawn(move || {
        let mut frames = Vec::new();
        loop {
            match client.next_push() {
                Ok(frame) => frames.push(frame),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if done.load(Ordering::SeqCst) {
                        return frames;
                    }
                }
                Err(e) => panic!("subscriber read failed: {e}"),
            }
        }
    })
}

#[test]
fn push_frames_match_location_change_sink_bit_for_bit() {
    let sc = rfid_repro::sim::scenario::endurance_trace(100, 4, 7007);
    let items: Vec<StreamItem> = sc.trace.stream().collect();
    let epoch_len = sc.trace.epoch_len;
    let half_shelf = sc.layout.total_length() / 2.0;

    let model = JointModel::with_sensor(
        ConeSensor::paper_default(),
        ModelParams::default_warehouse(),
    );
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 150;
    cfg.report_delay_epochs = 30;
    let engine = InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
        .expect("valid config");

    let store = Arc::new(RwLock::new(EventStore::new(StoreConfig::default())));
    // 16-frame queues: TCP subscribers that read continuously never
    // lag (workers drain every pump while inference paces commits),
    // but the in-process laggard (never polled) must overflow
    let hub = SubscriptionHub::new(HubConfig::default().with_queue_frames(16));
    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub.clone(),
        ServerConfig::default(),
    )
    .expect("bind");

    // three TCP subscribers with different filters, registered before
    // ingestion starts so they see the whole delta stream
    let connect = || {
        QueryClient::connect(server.addr())
            .timeout(Duration::from_millis(250))
            .establish()
            .expect("connect")
    };
    let filters = [
        SubscriptionFilter::All,
        SubscriptionFilter::Region {
            x0: -1e9,
            y0: -1e9,
            x1: 1e9,
            y1: half_shelf,
        },
        SubscriptionFilter::Tags(vec![TagId(0), TagId(3), TagId(7)]),
    ];
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = filters
        .iter()
        .map(|f| {
            let mut client = connect();
            client.subscribe(f).expect("subscribe");
            drain_pushes(client, Arc::clone(&done))
        })
        .collect();
    // the laggard: registered but never polled during ingestion
    let laggard = hub.subscribe(999, SubscriptionFilter::All);

    // ingest the trace through the live pipeline, fanning the stream
    // into the store, the hub, and the ground-truth change sink
    let ingest = {
        let store_sink = StoreSink::new(Arc::clone(&store));
        let hub_sink = hub.sink();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let sink = ((store_sink, hub_sink), LocationChangeSink::new(0.0));
            let mut pipeline = Pipeline::new(epoch_len, engine, sink);
            // yield between stream items so the single-core CI box
            // schedules the server workers between commits — the TCP
            // subscribers must stay well-fed; only the unpolled
            // laggard is supposed to overflow its queue
            let stats = pipeline
                .run_to_completion(&mut items.into_iter().inspect(|_| std::thread::yield_now()));
            done.store(true, Ordering::SeqCst);
            let (_engine, (_, change_sink), _) = pipeline.into_parts();
            (change_sink, stats)
        })
    };

    let (change_sink, stats) = ingest.join().expect("ingestion thread");
    assert!(stats.events > 0, "the engine emitted events");
    let truth: Vec<RowKey> = change_sink.updates().iter().map(key_of_update).collect();
    assert!(
        truth.len() > 60,
        "a real delta stream: {} rows",
        truth.len()
    );

    let frames: Vec<Vec<Frame>> = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread"))
        .collect();

    // flatten each subscriber's PUSH rows in delivery order
    let flatten = |frames: &[Frame]| -> Vec<RowKey> {
        frames
            .iter()
            .map(|f| match f {
                Frame::Push { rows, .. } => rows.iter().map(key_of_row).collect::<Vec<_>>(),
                other => panic!("well-fed subscriber got {other:?}"),
            })
            .collect::<Vec<_>>()
            .concat()
    };

    // ALL: the union of received frames IS the sink's delta stream
    assert_eq!(flatten(&frames[0]), truth, "ALL subscriber != sink deltas");

    // REGION: exactly the updates whose new location matches
    let region_truth: Vec<RowKey> = change_sink
        .updates()
        .iter()
        .filter(|u| u.location.y <= half_shelf)
        .map(key_of_update)
        .collect();
    assert!(
        !region_truth.is_empty() && region_truth.len() < truth.len(),
        "region filter should be a proper non-empty subset"
    );
    assert_eq!(flatten(&frames[1]), region_truth, "REGION subscriber");

    // TAGS: exactly the updates of the subscribed tags
    let tag_truth: Vec<RowKey> = change_sink
        .updates()
        .iter()
        .filter(|u| [0u64, 3, 7].contains(&u.tag.0))
        .map(key_of_update)
        .collect();
    assert!(!tag_truth.is_empty());
    assert_eq!(flatten(&frames[2]), tag_truth, "TAGS subscriber");

    // the laggard overflowed: one LAGGED notice for the whole run,
    // then the surviving frames; every dropped row is counted and the
    // delivered tail is still bit-identical to the stream's suffix
    let queue_cap = hub.config().queue_frames;
    let commits = frames[0].len();
    assert!(
        commits > queue_cap,
        "trace must out-commit the queue ({commits} commits <= {queue_cap})"
    );
    let first = laggard.poll().expect("laggard has pending output");
    let Frame::Lagged { id: 999, dropped } = first else {
        panic!("expected the lag notice first, got {first:?}");
    };
    assert!(dropped > 0);
    let mut delivered: Vec<RowKey> = Vec::new();
    let mut survived_frames = 0usize;
    while let Some(frame) = laggard.poll() {
        match frame {
            Frame::Push { rows, .. } => {
                delivered.extend(rows.iter().map(key_of_row));
                survived_frames += 1;
            }
            Frame::Lagged { .. } => panic!("a second LAGGED for one overflow run"),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(survived_frames, queue_cap, "exactly the queue survives");
    assert_eq!(
        dropped as usize + delivered.len(),
        truth.len(),
        "dropped + delivered accounts for the whole delta stream"
    );
    assert_eq!(
        delivered,
        truth[truth.len() - delivered.len()..],
        "the delivered tail is bit-identical to the stream suffix"
    );

    server.shutdown();
}
