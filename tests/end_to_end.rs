//! End-to-end integration through the umbrella crate: simulator →
//! stream synchronization → inference engine → location events.

use rfid_repro::core::engine::run_engine;
use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;

fn mean_err(events: &[LocationEvent], truth: &rfid_repro::sim::GroundTruth) -> f64 {
    let mut s = 0.0;
    let mut n = 0;
    for e in events {
        if let Some(t) = truth.object_at(e.tag, e.epoch) {
            s += e.location.dist_xy(&t);
            n += 1;
        }
    }
    assert!(n > 0);
    s / n as f64
}

#[test]
fn full_system_cleans_a_warehouse_trace() {
    let sc = scenario::small_trace(10, 4, 2024);
    let model = JointModel::new(ModelParams::default_warehouse());
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 800;
    let mut engine =
        InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
            .expect("valid configuration");
    let events = run_engine(&mut engine, &sc.trace.epoch_batches());
    // one event per object, all located within a foot on average
    assert_eq!(events.len(), 10);
    let err = mean_err(&events, &sc.trace.truth);
    assert!(err < 1.0, "mean error {err} ft");
    // statistics attached to every event
    assert!(events.iter().all(|e| e.stats.is_some()));
}

#[test]
fn true_sensor_engine_matches_logistic_engine_closely() {
    // Inference with the ground-truth cone and with the generic
    // logistic approximation should land in the same neighborhood.
    let sc = scenario::small_trace(10, 4, 31);
    let batches = sc.trace.epoch_batches();
    let mut cfg = FilterConfig::factored_default();
    cfg.particles_per_object = 600;

    let mut e1 = InferenceEngine::new(
        JointModel::with_sensor(
            ConeSensor::paper_default(),
            ModelParams::default_warehouse(),
        ),
        sc.layout.clone(),
        sc.trace.shelf_tags.clone(),
        cfg,
    )
    .unwrap();
    let ev1 = run_engine(&mut e1, &batches);

    let mut e2 = InferenceEngine::new(
        JointModel::new(ModelParams::default_warehouse()),
        sc.layout.clone(),
        sc.trace.shelf_tags.clone(),
        cfg,
    )
    .unwrap();
    let ev2 = run_engine(&mut e2, &batches);

    let d1 = mean_err(&ev1, &sc.trace.truth);
    let d2 = mean_err(&ev2, &sc.trace.truth);
    assert!(d1 < 1.0, "true-sensor error {d1}");
    assert!(d2 < 1.0, "logistic error {d2}");
    assert!((d1 - d2).abs() < 0.8, "models disagree: {d1} vs {d2}");
}

#[test]
fn engine_is_deterministic_for_a_fixed_seed() {
    let sc = scenario::small_trace(6, 2, 55);
    let batches = sc.trace.epoch_batches();
    let run = || {
        let mut cfg = FilterConfig::full_default();
        cfg.particles_per_object = 300;
        let mut engine = InferenceEngine::new(
            JointModel::new(ModelParams::default_warehouse()),
            sc.layout.clone(),
            sc.trace.shelf_tags.clone(),
            cfg,
        )
        .unwrap();
        run_engine(&mut engine, &batches)
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.tag, y.tag);
        assert!(
            x.location.dist(&y.location) < 1e-12,
            "nondeterministic output"
        );
    }
}

#[test]
fn reader_estimate_tracks_biased_reports_via_shelf_tags() {
    // systematic y bias in the reports; the engine's reader estimate
    // should stay closer to the truth than the raw reports do
    let sc = scenario::location_noise_trace(0.8, 0.2, 77);
    let batches = sc.trace.epoch_batches();
    let mut params = ModelParams::default_warehouse();
    // the engine knows reports are noisy but not the exact bias: give
    // it a weak report trust and let shelf tags correct the rest
    params.sensing.sigma = Vec3::new(0.3, 0.3, 0.0);
    let mut cfg = FilterConfig::factored_default();
    cfg.particles_per_object = 400;
    cfg.reader_particles = 200;
    let mut engine = InferenceEngine::new(
        JointModel::with_sensor(ConeSensor::paper_default(), params),
        sc.layout.clone(),
        sc.trace.shelf_tags.clone(),
        cfg,
    )
    .unwrap();

    let mut report_err = 0.0;
    let mut est_err = 0.0;
    let mut n = 0;
    for b in &batches {
        engine.process_batch(b);
        if let (Some(rep), Some(est), Some(truth)) = (
            b.reader_report,
            engine.reader_estimate(),
            sc.trace.truth.reader_at(b.epoch),
        ) {
            report_err += rep.pos.dist_xy(&truth.pos);
            est_err += est.pos.dist_xy(&truth.pos);
            n += 1;
        }
    }
    let report_err = report_err / n as f64;
    let est_err = est_err / n as f64;
    assert!(
        est_err < report_err,
        "engine should beat raw reports: est {est_err} vs reports {report_err}"
    );
}
