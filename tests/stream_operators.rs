//! Integration coverage for the stream operators (`window`, `groupby`,
//! `istream`, `rstream`) driven by *real* engine event streams — not
//! hand-built tuples — both directly and as composed pipeline sinks.

use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;
use rfid_repro::stream::operators::{group_sum, having, ChangeDetector, RangeWindow};
use rfid_repro::stream::pipeline::sinks::{
    FireCodeSink, LocationChangeSink, SnapshotSink, TrailSink,
};
use rfid_repro::stream::queries::SquareFtArea;
use rfid_repro::stream::Pipeline;

/// Runs the full engine over a small dense scenario through the
/// streaming pipeline, fanning the cleaned events into every operator
/// sink at once, and returns the collector plus the sinks.
type SinkStack = (
    Vec<LocationEvent>,
    (
        LocationChangeSink,
        (FireCodeSink<fn(TagId) -> f64>, (TrailSink, SnapshotSink)),
    ),
);

fn run_dense_scenario() -> (scenario::Scenario, SinkStack) {
    let sc = scenario::small_trace(16, 4, 301);
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 400;
    cfg.num_shards = 2;
    let engine = InferenceEngine::new(
        JointModel::new(ModelParams::default_warehouse()),
        sc.layout.clone(),
        sc.trace.shelf_tags.clone(),
        cfg,
    )
    .unwrap();
    let weight: fn(TagId) -> f64 = |_| 110.0;
    let sinks: SinkStack = (
        Vec::new(),
        (
            LocationChangeSink::new(0.1),
            (
                FireCodeSink::new(sc.trace.epoch_len, 5.0, weight, 200.0),
                (TrailSink::new(3), SnapshotSink::new(50)),
            ),
        ),
    );
    let mut pipeline = Pipeline::new(sc.trace.epoch_len, engine, sinks);
    pipeline.run_to_completion(&mut sc.trace.stream());
    let (_, sinks, stats) = pipeline.into_parts();
    assert!(stats.epochs > 0);
    (sc, sinks)
}

#[test]
fn operator_sinks_compose_on_real_event_streams() {
    let (_sc, (events, (changes, (fire, (trail, snapshots))))) = run_dense_scenario();
    assert!(!events.is_empty(), "engine produced no events");

    // istream (LocationChangeQuery): stationary objects with one event
    // each fire exactly once
    assert_eq!(changes.updates().len(), 16);
    assert_eq!(changes.query().num_tags(), 16);

    // window (PartitionedRowWindow): trails bounded at n, latest agrees
    // with the last event of each tag
    assert_eq!(trail.num_tags(), 16);
    for e in &events {
        assert!(trail.trail(e.tag).count() <= 3);
    }
    let last_of_first = events.iter().rfind(|e| e.tag == events[0].tag).unwrap();
    let (latest_epoch, latest_loc) = trail.latest(events[0].tag).copied().unwrap();
    assert_eq!(latest_epoch, last_of_first.epoch);
    assert_eq!(latest_loc.x.to_bits(), last_of_first.location.x.to_bits());

    // groupby + having (FireCodeQuery): 16 objects packed 2 per square
    // foot at 110 lb each => violations must fire somewhere on the shelf
    assert!(
        !fire.violations().is_empty(),
        "densely packed shelf must violate the fire code"
    );
    for (_, area, total) in fire.violations() {
        assert!((1..=2).contains(&area.x), "violation off-shelf at {area:?}");
        assert!(*total > 200.0);
    }

    // rstream (SnapshotSink): snapshots were taken, relations are
    // sorted by tag, and the last one holds every reported tag
    assert!(!snapshots.emissions().is_empty());
    let (_, last_relation) = snapshots.emissions().last().unwrap();
    assert_eq!(last_relation.len(), 16);
    for w in last_relation.windows(2) {
        assert!(w[0].0 < w[1].0, "snapshot relation must be tag-sorted");
    }
}

#[test]
fn range_window_and_groupby_on_real_events() {
    // drive the raw operators by hand with a real cleaned event stream
    let (sc, (events, _)) = run_dense_scenario();

    // RangeWindow: replay the events through a 5-second window,
    // checking the eviction invariant at every step
    let mut w: RangeWindow<TagId> = RangeWindow::new(5.0);
    for e in &events {
        let t = e.epoch.0 as f64 * sc.trace.epoch_len;
        w.push(t, e.tag);
        assert!(w.iter().all(|(time, _)| *time >= w.watermark() - 5.0));
    }
    // advancing far past the end empties it
    let end = events.last().unwrap().epoch.0 as f64 + 100.0;
    w.advance(end);
    assert!(w.is_empty());

    // group_sum/having over the final event per tag: every occupied
    // square-foot cell sums its objects' weights
    let mut last: std::collections::BTreeMap<TagId, Point3> = Default::default();
    for e in &events {
        last.insert(e.tag, e.location);
    }
    let groups = group_sum(
        last.iter().map(|(t, p)| (*t, SquareFtArea::of(p))),
        |(_, a)| *a,
        |_| 110.0,
    );
    let total: f64 = groups.values().sum();
    assert!((total - 16.0 * 110.0).abs() < 1e-9, "weights conserved");
    let over = having(groups, |v| v > 200.0);
    assert!(!over.is_empty(), "some cell must hold >= 2 objects");

    // istream (ChangeDetector) generically over the real stream:
    // emission count matches manual change tracking
    let mut det: ChangeDetector<TagId, (i64, i64)> = ChangeDetector::new();
    let mut fired = 0;
    for e in &events {
        let cell = SquareFtArea::of(&e.location);
        if det.push(e.tag, (cell.x, cell.y)).is_some() {
            fired += 1;
        }
    }
    assert!(fired >= 16, "every tag fires at least once");
}
