//! Cross-crate stream test: the paper's two CQL queries run against
//! the engine's cleaned event stream and produce sensible answers that
//! the raw streams could not.

use rfid_repro::core::engine::run_engine;
use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;
use rfid_repro::stream::queries::{FireCodeQuery, LocationChangeQuery, SquareFtArea};
use rfid_repro::stream::sync::synchronize_traces;

#[test]
fn location_change_query_fires_once_per_stationary_object() {
    let sc = scenario::small_trace(8, 4, 300);
    let mut cfg = FilterConfig::factored_default();
    cfg.particles_per_object = 400;
    let mut engine = InferenceEngine::new(
        JointModel::new(ModelParams::default_warehouse()),
        sc.layout.clone(),
        sc.trace.shelf_tags.clone(),
        cfg,
    )
    .unwrap();
    let events = run_engine(&mut engine, &sc.trace.epoch_batches());

    let mut q = LocationChangeQuery::new(0.1);
    let mut updates = 0;
    for e in &events {
        if q.push(e).is_some() {
            updates += 1;
        }
    }
    // stationary objects, one event each: exactly one update per object
    assert_eq!(updates, 8);
    assert_eq!(q.num_tags(), 8);
}

#[test]
fn fire_code_query_counts_objects_per_square_foot() {
    // 16 objects on 8 ft of shelf: two per square foot, each 110 lb
    // => every occupied square foot totals 220 lb > 200 lb
    let sc = scenario::small_trace(16, 4, 301);
    let mut cfg = FilterConfig::factored_default();
    cfg.particles_per_object = 600;
    let mut engine = InferenceEngine::new(
        JointModel::new(ModelParams::default_warehouse()),
        sc.layout.clone(),
        sc.trace.shelf_tags.clone(),
        cfg,
    )
    .unwrap();
    let events = run_engine(&mut engine, &sc.trace.epoch_batches());

    let mut q = FireCodeQuery::new(5.0, |_| 110.0, 200.0);
    let mut violating_areas: Vec<SquareFtArea> = Vec::new();
    for e in &events {
        let t = e.epoch.0 as f64;
        q.push(t, e);
        for (area, _total) in q.evaluate(t) {
            if !violating_areas.contains(&area) {
                violating_areas.push(area);
            }
        }
    }
    assert!(
        !violating_areas.is_empty(),
        "densely packed shelf must trigger the fire code"
    );
    // violations sit on the shelf band (x cell 1 or 2 for the 2-ft standoff)
    for a in &violating_areas {
        assert!((1..=2).contains(&a.x), "violation off-shelf at {a:?}");
    }
}

#[test]
fn synchronizer_feeds_engine_identically_to_batch_helper() {
    // stream the raw trace through the incremental synchronizer and
    // compare with the one-shot helper
    let sc = scenario::small_trace(6, 2, 302);
    let batches_oneshot = sc.trace.epoch_batches();

    let mut sync = rfid_repro::stream::StreamSynchronizer::new(sc.trace.epoch_len);
    let mut batches_inc = Vec::new();
    let mut ri = 0;
    let mut pi = 0;
    let readings = &sc.trace.readings;
    let reports = &sc.trace.reports;
    // interleave by time
    while ri < readings.len() || pi < reports.len() {
        let next_reading = readings.get(ri).map(|r| r.time).unwrap_or(f64::INFINITY);
        let next_report = reports.get(pi).map(|r| r.time).unwrap_or(f64::INFINITY);
        if next_reading <= next_report {
            sync.push_reading(readings[ri]);
            ri += 1;
        } else {
            sync.push_report(reports[pi]);
            pi += 1;
        }
        batches_inc.extend(sync.drain_ready());
    }
    batches_inc.extend(sync.flush());

    assert_eq!(batches_oneshot.len(), batches_inc.len());
    for (a, b) in batches_oneshot.iter().zip(&batches_inc) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.readings, b.readings);
    }
    // and the helper agrees with itself
    let again = synchronize_traces(readings, reports, sc.trace.epoch_len);
    assert_eq!(again.len(), batches_oneshot.len());
}
