//! Smoke test pinning the documented entry point: runs the exact flow of
//! `examples/quickstart.rs` headlessly (fewer particles, no printing) so the
//! README/example can't rot without CI noticing. The examples themselves are
//! compile-checked by `cargo clippy --all-targets` in CI.

use rfid_repro::core::engine::run_engine;
use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;

#[test]
fn quickstart_flow_produces_an_event_per_object() {
    // same scenario shape and seed as examples/quickstart.rs
    let sc = scenario::small_trace(10, 4, 7);
    assert!(
        sc.trace.num_readings() > 0,
        "simulator produced no readings"
    );
    assert_eq!(sc.trace.object_tags.len(), 10);
    assert_eq!(sc.trace.shelf_tags.len(), 4);

    let model = JointModel::new(ModelParams::default_warehouse());
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 300; // the example uses 1000; keep CI fast
    let mut engine =
        InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
            .expect("valid configuration");

    let events = run_engine(&mut engine, &sc.trace.epoch_batches());
    assert_eq!(
        events.len(),
        sc.trace.object_tags.len(),
        "every object should yield exactly one location event"
    );

    // every event scores against ground truth, as the example prints
    let mut total_err = 0.0;
    for e in &events {
        let truth = sc
            .trace
            .truth
            .object_at(e.tag, e.epoch)
            .expect("simulated object has ground truth");
        total_err += e.location.dist_xy(&truth);
        assert!(e.stats.is_some(), "events carry confidence stats");
    }
    let mean_err = total_err / events.len() as f64;
    assert!(
        mean_err < 3.0,
        "mean XY error {mean_err:.2} ft is out of the plausible range"
    );
}
