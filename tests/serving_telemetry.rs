//! The observability acceptance contract: a `TELEMETRY` scrape over a
//! real TCP connection must expose a metric family from **every**
//! layer that ran — engine, pipeline, store, hub, and the server's own
//! per-verb latency histograms — and `TELEMETRY TRACE` must carry the
//! slow-epoch spans sampled while the pipeline streamed.
//!
//! The per-crate serve tests cover the store/hub/server families in
//! isolation; only a full-stack run (pipeline driving a live engine
//! into a served store) can prove the engine_* and pipeline_* families
//! reach the same scrape.

use rfid_repro::prelude::*;
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{serve_with, HubConfig, Query, QueryClient, QueryResponse, ServerConfig};
use rfid_serve::{SubscriptionHub, TelemetryCmd};
use rfid_stream::pipeline::sinks::StoreSink;
use std::sync::{Arc, RwLock};
use std::time::Duration;

#[test]
fn telemetry_scrape_exposes_every_layer() {
    // arm the slow-epoch ring before the run: at a 1µs threshold every
    // epoch is "slow", so the ring is guaranteed non-empty afterwards.
    // (The registry and trace ring are process-global; this file is its
    // own test binary, so the threshold leaks nowhere else.)
    rfid_obs::trace().set_slow_epoch_us(1);

    let sc = rfid_repro::sim::scenario::small_trace(12, 2, 77);
    let model = JointModel::new(ModelParams::default_warehouse());
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 100;
    cfg.report_delay_epochs = 30;
    let engine = InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
        .expect("valid configuration");

    let store = Arc::new(RwLock::new(EventStore::new(StoreConfig::default())));
    let hub = SubscriptionHub::new(HubConfig::default());
    let mut pipeline = Pipeline::new(
        sc.trace.epoch_len,
        engine,
        (StoreSink::new(Arc::clone(&store)), hub.sink()),
    );
    let stats = pipeline.run_to_completion(&mut sc.trace.stream());
    assert!(stats.epochs > 0, "the trace must actually stream");

    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub.clone(),
        ServerConfig::default(),
    )
    .expect("bind query server");
    let mut client = QueryClient::connect(server.addr())
        .timeout(Duration::from_secs(10))
        .establish()
        .expect("connect");

    // one real query so the verb histograms carry at least one sample
    match client.query(&Query::CurrentLocation(TagId(1))).unwrap() {
        QueryResponse::Rows(_) => {}
        QueryResponse::Error(e) => panic!("CURRENT failed: {e}"),
    }

    let metrics = client
        .telemetry(TelemetryCmd::Metrics)
        .expect("METRICS scrape");
    for family in [
        // engine: stage histograms + mirrored counters
        "engine_infer_us",
        "engine_ingest_us",
        "engine_emit_us",
        "engine_epochs_total",
        // pipeline: stage counters + buffer high-water gauges
        "pipeline_epochs_total",
        "pipeline_readings_total",
        "pipeline_sync_pending_high_water",
        // store / hub / server
        "store_events_total",
        "store_segments",
        "hub_delivered_total",
        "hub_lagged_total",
        "server_query_us_current",
    ] {
        assert!(
            metrics.contains(family),
            "scrape is missing {family}:\n{metrics}"
        );
    }
    // the engine ran through the pipeline, so the two layers must agree
    // on the epoch count in the very same scrape
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("no {name} sample line"))
            .trim()
            .parse()
            .expect("integer sample")
    };
    assert_eq!(counter("engine_epochs_total"), stats.epochs);
    assert_eq!(counter("pipeline_epochs_total"), stats.epochs);
    assert_eq!(counter("engine_infer_us_count"), stats.epochs);

    // the armed trace ring must have sampled the streamed epochs
    let trace = client.telemetry(TelemetryCmd::Trace).expect("TRACE scrape");
    assert!(
        trace.lines().any(|l| l.starts_with("slow_epoch")),
        "no slow_epoch spans at a 1µs threshold:\n{trace}"
    );

    server.shutdown();
}
