//! Cross-crate comparison: our system vs SMURF vs uniform, on a trace
//! with reader-location drift — the paper's headline comparison in
//! miniature.

use rfid_repro::baselines::{Smurf, SmurfConfig, UniformBaseline};
use rfid_repro::core::engine::run_engine;
use rfid_repro::prelude::*;
use rfid_repro::sim::lab::LabDeployment;
use rfid_repro::stream::Epoch;

fn mean_err(events: &[LocationEvent], truth: &rfid_repro::sim::GroundTruth) -> f64 {
    let mut s = 0.0;
    let mut n = 0;
    for e in events {
        if let Some(t) = truth.object_at(e.tag, e.epoch) {
            s += e.location.dist_xy(&t);
            n += 1;
        }
    }
    assert!(n > 0, "no scorable events");
    s / n as f64
}

#[test]
fn our_system_beats_smurf_on_the_lab_rig() {
    let lab = LabDeployment::standard();
    let trace = lab.generate(500, 11);
    let batches = trace.epoch_batches();
    let last = batches.last().unwrap().epoch;
    let shelves = vec![lab.imagined_shelf(0, true), lab.imagined_shelf(1, true)];

    // ours: a wide-angle logistic model matching the lab's spherical
    // antenna, with weak report trust (no EM here — the calibration
    // path is covered by rfid-learn's tests and the fig6b experiment;
    // this test isolates the inference comparison)
    let mut params = ModelParams::default_warehouse();
    params.sensor = SensorParams {
        a: [3.0, -0.5, -0.3],
        b: [-1.5, -0.5],
    };
    params.sensing.sigma = Vec3::new(0.3, 0.3, 0.0);
    let mut cfg = FilterConfig::factored_default();
    cfg.particles_per_object = 600;
    let mut engine = InferenceEngine::new(
        JointModel::new(params),
        lab.prior(),
        trace.shelf_tags.clone(),
        cfg,
    )
    .unwrap();
    let ours = run_engine(&mut engine, &batches);

    // SMURF
    let mut smurf = Smurf::new(
        SmurfConfig::new(3.0, shelves.clone()),
        trace.shelf_tags.iter().map(|(t, _)| *t),
    );
    let mut smurf_events = Vec::new();
    for b in &batches {
        smurf_events.extend(smurf.process_batch(b));
    }
    smurf_events.extend(smurf.finalize(last));

    // uniform
    let mut uni = UniformBaseline::new(3.0, shelves, trace.shelf_tags.iter().map(|(t, _)| *t), 5);
    let mut uni_events = Vec::new();
    for b in &batches {
        uni_events.extend(uni.process_batch(b));
    }
    uni_events.extend(uni.finalize(last));

    let e_ours = mean_err(&ours, &trace.truth);
    let e_smurf = mean_err(&smurf_events, &trace.truth);
    let e_uni = mean_err(&uni_events, &trace.truth);

    // the paper's ordering: ours < SMURF <= uniform
    assert!(
        e_ours < e_smurf,
        "our system should beat SMURF: {e_ours} vs {e_smurf}"
    );
    assert!(
        e_smurf < e_uni + 0.3,
        "SMURF should not lose badly to uniform: {e_smurf} vs {e_uni}"
    );
    // and a substantial reduction, in the spirit of the 49% claim
    let reduction = 100.0 * (1.0 - e_ours / e_smurf);
    assert!(
        reduction > 15.0,
        "error reduction vs SMURF only {reduction:.0}%"
    );
}

#[test]
fn every_object_reported_by_all_three_systems() {
    let lab = LabDeployment::standard();
    let trace = lab.generate(750, 12);
    let batches = trace.epoch_batches();
    let last = batches.last().unwrap().epoch;
    let shelves = vec![lab.imagined_shelf(0, false), lab.imagined_shelf(1, false)];

    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 300;
    let mut engine = InferenceEngine::new(
        JointModel::new(ModelParams::default_warehouse()),
        lab.prior(),
        trace.shelf_tags.clone(),
        cfg,
    )
    .unwrap();
    let ours = run_engine(&mut engine, &batches);

    let mut smurf = Smurf::new(
        SmurfConfig::new(3.0, shelves.clone()),
        trace.shelf_tags.iter().map(|(t, _)| *t),
    );
    let mut smurf_events = Vec::new();
    for b in &batches {
        smurf_events.extend(smurf.process_batch(b));
    }
    smurf_events.extend(smurf.finalize(last));

    let mut uni = UniformBaseline::new(3.0, shelves, trace.shelf_tags.iter().map(|(t, _)| *t), 6);
    let mut uni_events = Vec::new();
    for b in &batches {
        uni_events.extend(uni.process_batch(b));
    }
    uni_events.extend(uni.finalize(last));

    for (name, events) in [
        ("ours", &ours),
        ("smurf", &smurf_events),
        ("uniform", &uni_events),
    ] {
        let mut tags: Vec<u64> = events.iter().map(|e| e.tag.0).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(
            tags.len(),
            80,
            "{name} should report every one of the 80 tags, got {}",
            tags.len()
        );
    }
    let _ = Epoch(0);
}
