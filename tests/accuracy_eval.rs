//! Accuracy-evaluation integration: the event-level scorer over real
//! system runs, and the determinism contract extended to the new
//! adversarial scenarios — accuracy results must be bit-identical for
//! every `(worker_threads, num_shards)` combination, or the accuracy
//! trajectory would depend on the execution configuration.

use rfid_bench::runner::{
    run_baseline_uniform, run_engine_variant_opts, EngineVariant, InferenceSensor, RunOpts,
};
use rfid_bench::{score_scenario, EventScoreConfig};
use rfid_model::sensor::ConeSensor;
use rfid_model::ModelParams;
use rfid_repro::sim::scenario;
use rfid_stream::LocationEvent;

fn run_churn(workers: usize, shards: usize) -> (scenario::Scenario, Vec<LocationEvent>) {
    let sc = scenario::tag_churn_trace(4004);
    let out = run_engine_variant_opts(
        &sc.trace.epoch_batches(),
        &sc.layout,
        &sc.trace.shelf_tags,
        EngineVariant::Full,
        InferenceSensor::TrueCone(ConeSensor::paper_default()),
        ModelParams::default_warehouse(),
        RunOpts::new(150, 30)
            .with_workers(workers)
            .with_shards(shards),
    );
    (sc, out.events)
}

#[test]
fn churn_accuracy_is_bit_identical_across_workers_and_shards() {
    let (_, base) = run_churn(1, 1);
    assert!(!base.is_empty());
    // the digest covers every bit of every event — epoch, tag, full
    // location, and the statistics payload — so a scheduling-dependent
    // perturbation anywhere in the stream fails here
    let base_digest = rfid_bench::golden::event_digest(&base);
    for workers in [1usize, 2, 4] {
        for shards in [1usize, 2, 8] {
            if (workers, shards) == (1, 1) {
                continue;
            }
            let (_, events) = run_churn(workers, shards);
            // field-level diagnostics first: a digest mismatch alone
            // would not say where the streams diverged
            assert_eq!(base.len(), events.len(), "w={workers} s={shards}");
            for (a, b) in base.iter().zip(&events) {
                assert_eq!(a.epoch, b.epoch, "w={workers} s={shards}");
                assert_eq!(a.tag, b.tag, "w={workers} s={shards}");
                assert_eq!(
                    a.location.x.to_bits(),
                    b.location.x.to_bits(),
                    "w={workers} s={shards} tag={:?}",
                    a.tag
                );
            }
            assert_eq!(
                base_digest,
                rfid_bench::golden::event_digest(&events),
                "w={workers} s={shards}: full-bit digest diverged"
            );
        }
    }
}

#[test]
fn engine_beats_uniform_on_event_f1_under_churn() {
    let (sc, events) = run_churn(1, 1);
    let cfg = EventScoreConfig::default();
    let engine = score_scenario(&events, &sc, &cfg);
    let shelves = sc.layout.shelves().iter().map(|s| s.bbox).collect();
    let uni = run_baseline_uniform(
        &sc.trace.epoch_batches(),
        shelves,
        4.4,
        &sc.trace.shelf_tags,
        21,
    );
    let uniform = score_scenario(&uni.events, &sc, &cfg);
    assert!(
        engine.events.f1 > uniform.events.f1,
        "engine F1 {} must beat uniform {}",
        engine.events.f1,
        uniform.events.f1
    );
    // churn-specific: arrivals are recalled, and the engine does not
    // hallucinate departed objects into the second scan pass
    assert!(
        engine.events.recall > 0.8,
        "recall {}",
        engine.events.recall
    );
    assert_eq!(engine.events.confusion.phantom, 0, "phantom events");
    // every event is attributable to the correct shelf
    assert!(
        engine.containment > 0.9,
        "containment {}",
        engine.containment
    );
}

#[test]
fn scorer_handles_conveyor_change_detection_end_to_end() {
    let sc = scenario::conveyor_trace(4004);
    let out = run_engine_variant_opts(
        &sc.trace.epoch_batches(),
        &sc.layout,
        &sc.trace.shelf_tags,
        EngineVariant::Full,
        InferenceSensor::TrueCone(ConeSensor::paper_default()),
        ModelParams::default_warehouse(),
        RunOpts::new(150, 30),
    );
    let s = score_scenario(&out.events, &sc, &EventScoreConfig::default());
    assert!(s.change.moves_total > 50, "moves {}", s.change.moves_total);
    assert!(
        s.change.moves_detected > 0,
        "continuous motion must be detectable"
    );
    assert!(s.change.mean_delay_epochs >= 0.0);
    assert!(s.events.f1 > 0.5, "f1 {}", s.events.f1);
}
