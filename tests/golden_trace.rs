//! Golden-trace regression harness: the engine's event stream on three
//! canonical scenarios is pinned bit-for-bit by digests committed
//! under `tests/golden/`. Any change to the inference math — a model
//! constant, an RNG draw, a resampling rule, a merge order — flips a
//! digest and fails tier-1 instead of passing silently.
//!
//! Intentional inference changes regenerate the digests via the bless
//! path:
//!
//! ```text
//! RFID_GOLDEN_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! and the diff of `tests/golden/*.txt` is then reviewed like any
//! other behavioral change.

use rfid_bench::golden::render_digest;
use rfid_repro::prelude::*;
use rfid_repro::sim::scenario::Scenario;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Runs the engine over a scenario with a fully pinned configuration
/// and checks (or blesses) its digest file.
fn check_golden(name: &str, sc: &Scenario, cfg: FilterConfig, cfg_desc: &str) {
    let model = JointModel::with_sensor(
        ConeSensor::paper_default(),
        ModelParams::default_warehouse(),
    );
    let mut engine =
        InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
            .expect("valid config");
    let events = run_engine(&mut engine, &sc.trace.epoch_batches());
    assert!(!events.is_empty(), "{name}: scenario produced no events");

    let rendered = render_digest(name, cfg_desc, &events);
    let path = golden_path(name);
    if std::env::var_os("RFID_GOLDEN_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden digest");
        eprintln!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden digest {} ({e}); regenerate with \
             RFID_GOLDEN_BLESS=1 cargo test --test golden_trace",
            path.display()
        )
    });
    assert_eq!(
        committed,
        rendered,
        "{name}: the engine's event stream drifted from the committed \
         golden digest. If the inference change is intentional, rerun \
         with RFID_GOLDEN_BLESS=1 and review the diff of {}.",
        path.display()
    );
}

fn pinned(particles: usize) -> FilterConfig {
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = particles;
    cfg.reader_particles = 60;
    cfg.report_delay_epochs = 30;
    cfg
}

#[test]
fn golden_small_warehouse() {
    let sc = rfid_repro::sim::scenario::small_trace(10, 4, 2024);
    check_golden(
        "small_warehouse",
        &sc,
        pinned(250),
        "small_trace(10,4,2024) full_default particles=250 reader=60 delay=30 cone=paper",
    );
}

#[test]
fn golden_low_read_rate() {
    let sc = rfid_repro::sim::scenario::read_rate_trace(0.7, 333);
    check_golden(
        "low_read_rate",
        &sc,
        pinned(200),
        "read_rate_trace(0.7,333) full_default particles=200 reader=60 delay=30 cone=paper",
    );
}

#[test]
fn golden_moving_object() {
    let sc = rfid_repro::sim::scenario::moving_object_trace(6.0, 200, 666);
    check_golden(
        "moving_object",
        &sc,
        pinned(150),
        "moving_object_trace(6.0,200,666) full_default particles=150 reader=60 delay=30 cone=paper",
    );
}
