//! Offline vendored shim for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! This container builds with no registry access, so the workspace vendors the
//! subset of the proptest API its test modules use: the [`proptest!`] macro
//! over functions whose arguments are drawn from range strategies or
//! [`any`]`::<T>()`, plus [`prop_assert!`] / [`prop_assert_eq!`] and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics differ from upstream in two deliberate ways: case generation is
//! a deterministic seed sweep (one RNG stream per test name), and failures
//! panic immediately with the case number instead of shrinking to a minimal
//! counterexample. Rerun a failing case by reading the `case N` suffix in the
//! panic message.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Number of cases to run per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub mod strategy {
    use rand::distributions::uniform::SampleUniform;
    use rand::rngs::StdRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Produces one value per test case from the per-test RNG stream.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    /// Types with a natural "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            use rand::Rng;
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            use rand::Rng;
            // finite, sign-symmetric, spanning many magnitudes
            let mag = 10f64.powf(rng.gen_range(-3.0..6.0));
            if rng.gen::<bool>() {
                mag
            } else {
                -mag
            }
        }
    }

    macro_rules! arbitrary_uniform_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    use rand::Rng;
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    arbitrary_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Build the deterministic RNG stream for one test case.
///
/// Public because the [`proptest!`] expansion calls it; not part of the
/// emulated upstream API.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name so distinct properties get distinct streams
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Declare property tests: each function runs `cases` times with arguments
/// freshly drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn distinct_tests_get_distinct_streams() {
        use rand::RngCore;
        let mut a = crate::case_rng("alpha", 0);
        let mut b = crate::case_rng("beta", 0);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a0 = crate::case_rng("alpha", 0);
        let mut a1 = crate::case_rng("alpha", 1);
        assert_ne!(a0.next_u64(), a1.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn range_strategies_stay_in_bounds(x in -3.5..7.25f64, n in 1u32..10) {
            prop_assert!((-3.5..7.25).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn any_bool_takes_both_values(flip in any::<bool>(), _pad in 0..2u8) {
            // both branches must be reachable across the sweep; the stream is
            // deterministic, so simply touching them here is the regression
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0.0..1.0f64) {
            prop_assert!((0.0..1.0).contains(&v));
        }
    }
}
