//! Offline vendored shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This container builds with no registry access, so the workspace vendors
//! the *subset* of the rand 0.8 API its crates actually use:
//!
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`
//! * [`SeedableRng`] — `from_seed`, `seed_from_u64`
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (not the ChaCha12 of upstream, but the same trait surface;
//!   all in-repo tests fix their seeds against *this* generator)
//! * [`distributions::Distribution`] / [`distributions::Standard`] and the
//!   uniform range machinery backing `gen_range`
//!
//! The trait layering (`RngCore` → blanket `Rng`, `?Sized` bounds, range
//! sampling via `SampleRange`/`SampleUniform`) mirrors upstream so that the
//! shim can later be swapped for the real crate by editing one line in the
//! root `Cargo.toml`.

/// The raw-word generator interface; everything else layers on `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64, as upstream does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_word().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: seed expander (also usable as a quick generator).
    #[derive(Clone, Debug)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        pub fn new(state: u64) -> Self {
            Self { state }
        }

        pub fn next_word(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic, fast, and passes BigCrush; a different algorithm from
    /// upstream's `StdRng` (ChaCha12) but the same name and trait surface.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words. Together with
        /// [`StdRng::from_state`] this makes the generator fully
        /// serializable — a divergence from upstream `rand` (whose
        /// `StdRng` is opaque) that the workspace's checkpointing
        /// relies on.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by
        /// [`StdRng::state`]. The next draw continues the original
        /// sequence exactly. The all-zero state is invalid for
        /// xoshiro and is mapped to the same fixed fallback as
        /// `from_seed`.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return Self {
                    s: [
                        0x9E37_79B9_7F4A_7C15,
                        0x6A09_E667_F3BC_C909,
                        0xBB67_AE85_84CA_A73B,
                        0x3C6E_F372_FE94_F82B,
                    ],
                };
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// Types that can produce values of `T` given a source of randomness.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over `[0,1)` for floats, uniform
    /// over all values for integers, fair coin for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits -> uniform in [0, 1)
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    pub mod uniform {
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types usable with `Rng::gen_range`.
        pub trait SampleUniform: Sized {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        }

        /// Range types accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "gen_range: empty range");
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty range");
                T::sample_inclusive(low, high, rng)
            }
        }

        macro_rules! uniform_float {
            ($($t:ty => $bits:expr, $shift:expr),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        let unit =
                            (rng.next_u64() >> $shift) as $t * (1.0 / (1u64 << $bits) as $t);
                        low + (high - low) * unit
                    }

                    fn sample_inclusive<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        // same as half-open; the missing endpoint has measure zero
                        Self::sample_half_open(low, high, rng)
                    }
                }
            )*};
        }
        uniform_float!(f64 => 53, 11, f32 => 24, 40);

        macro_rules! uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        let span = (high as i128 - low as i128) as u128;
                        // widening-multiply rejection-free mapping; the bias is
                        // < 2^-64 for every span this workspace uses
                        let word = if span > u64::MAX as u128 {
                            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
                        } else {
                            ((rng.next_u64() as u128).wrapping_mul(span)) >> 64
                        };
                        (low as i128 + (word % span.max(1)) as i128) as $t
                    }

                    fn sample_inclusive<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        if low == high {
                            return low;
                        }
                        // low..=high with high < MAX reduces to the half-open case
                        if let Some(bump) = high.checked_add(1) {
                            return Self::sample_half_open(low, bump, rng);
                        }
                        let span = (high as i128 - low as i128) as u128 + 1;
                        (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                    }
                }
            )*};
        }
        uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }

    pub use uniform::{SampleRange, SampleUniform};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_clones() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        // exercise the forwarding impl for &mut R
        let forwarded: &mut StdRng = &mut a;
        let _ = forwarded.next_u32();
    }

    #[test]
    fn state_round_trip_resumes_the_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        use super::RngCore;
        for _ in 0..17 {
            let _ = a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // the invalid all-zero state maps to the from_seed fallback
        let mut z = StdRng::from_state([0; 4]);
        let mut f = StdRng::from_seed([0; 32]);
        assert_eq!(z.next_u64(), f.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-50.0..50.0);
            assert!((-50.0..50.0).contains(&x));
            let i = rng.gen_range(0..7usize);
            assert!(i < 7);
            let j = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&j));
        }
    }

    #[test]
    fn gen_range_hits_every_int_bucket() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "buckets {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn_width<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let x = takes_dyn_width(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
