//! Offline vendored shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This container builds with no registry access, so the workspace vendors the
//! subset of the criterion 0.5 API its nine benches use: `Criterion`,
//! `benchmark_group` / `BenchmarkGroup` (`sample_size`, `bench_function`,
//! `finish`), `Bencher` (`iter`, `iter_batched`), `BatchSize`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's full statistical pipeline, each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and reports the
//! minimum, mean, and maximum per-iteration wall time. That is enough for the
//! CI bench-smoke job and for coarse local comparisons; swap this crate for
//! the real criterion (one line in the root `Cargo.toml`) when registry
//! access is available and publication-quality statistics are needed.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `Bencher::iter_batched` amortizes setup cost. The shim times every
/// batch individually, so the variants only influence batch length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness state, threaded through every registered bench function.
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
    listing_only: bool,
    test_mode: bool,
}

/// Flags that take no value in the cargo/criterion harness protocol; any
/// other `--flag` is assumed to consume the following token, so that e.g.
/// `--save-baseline main` never misreads "main" as a name filter.
const BOOLEAN_FLAGS: &[&str] = &[
    "--bench",
    "--test",
    "--list",
    "--quiet",
    "--verbose",
    "--exact",
    "--nocapture",
    "--include-ignored",
    "--ignored",
];

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }
}

impl Criterion {
    // Cargo's bench harness protocol: `--bench` flags the bench context,
    // `--list` asks for target discovery, `--test` runs each benchmark
    // once without measurement, and a bare positional argument filters
    // benchmark names.
    fn from_args(args: &[String]) -> Self {
        let listing_only = args.iter().any(|a| a == "--list");
        let test_mode = args.iter().any(|a| a == "--test");
        let mut filter = None;
        let mut iter = args.iter();
        while let Some(a) = iter.next() {
            if a.starts_with("--") {
                if !BOOLEAN_FLAGS.contains(&a.as_str()) && !a.contains('=') {
                    iter.next(); // skip the flag's value
                }
            } else if !a.starts_with('-') {
                filter = Some(a.clone());
            }
        }
        Self {
            default_sample_size: 20,
            filter,
            listing_only,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.default_sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.default_sample_size;
        self.run_one(&id, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if self.listing_only {
            println!("{id}: benchmark");
            return;
        }
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            // run-once smoke, as upstream criterion does under `--test`
            let mut bencher = Bencher::default();
            f(&mut bencher);
            println!("{id}: test ok");
            return;
        }
        let mut samples = Vec::with_capacity(sample_size);
        // one warm-up sample, discarded
        let mut bencher = Bencher::default();
        f(&mut bencher);
        for _ in 0..sample_size {
            let mut bencher = Bencher::default();
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
            }
        }
        if samples.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<44} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&id, sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; records iteration count and elapsed time.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = 3;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let iters = 3;
        for _ in 0..iters {
            let input = black_box(setup());
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += iters;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce the `main` entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Criterion {
        Criterion {
            default_sample_size: 3,
            filter: None,
            listing_only: false,
            test_mode: false,
        }
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_values_are_not_mistaken_for_filters() {
        let c = Criterion::from_args(&args(&["--bench", "--save-baseline", "main"]));
        assert_eq!(c.filter, None);
        let c = Criterion::from_args(&args(&["--bench", "--sample-size", "50"]));
        assert_eq!(c.filter, None);
        let c = Criterion::from_args(&args(&["--bench", "uniform"]));
        assert_eq!(c.filter.as_deref(), Some("uniform"));
        let c = Criterion::from_args(&args(&["--bench", "--color=never", "smurf"]));
        assert_eq!(c.filter.as_deref(), Some("smurf"));
    }

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut c = Criterion::from_args(&args(&["--bench", "--test"]));
        assert!(c.test_mode);
        let mut iters = 0u64;
        c.bench_function("smoke", |b| b.iter(|| iters += 1));
        // one Bencher::iter call only (itself a small fixed batch), instead
        // of warm-up + sample_size timed samples
        assert_eq!(iters, 3);
    }

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert!(b.iters > 0);
    }

    #[test]
    fn groups_and_batched_iteration_run() {
        let mut c = harness();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(2);
            g.bench_function("iter", |b| b.iter(|| ran += 1));
            g.bench_function(format!("batched_{}", 1), |b| {
                b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::LargeInput)
            });
            g.finish();
        }
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching_benchmarks() {
        let mut c = harness();
        c.filter = Some("only_this".into());
        let mut ran = false;
        c.bench_function("something_else", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("only_this_one", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(2.5e-9).ends_with("ns"));
        assert!(fmt_time(2.5e-6).ends_with("µs"));
        assert!(fmt_time(2.5e-3).ends_with("ms"));
        assert!(fmt_time(2.5).ends_with(" s"));
    }
}
