//! # rfid-repro
//!
//! A from-scratch Rust reproduction of *"Probabilistic Inference over
//! RFID Streams in Mobile Environments"* (Tran, Sutton, Cocci, Nie,
//! Diao, Shenoy — ICDE 2009): translating noisy, incomplete raw streams
//! from mobile RFID readers into clean, precise event streams with
//! object locations, via scalable particle filtering.
//!
//! This umbrella crate re-exports the whole stack; the individual
//! crates can also be used directly:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`geom`] | points, poses, AABBs, 3×3 linear algebra, Gaussians |
//! | [`spatial`] | simplified R\*-tree + sensing-region index (§IV-C) |
//! | [`model`] | the probabilistic data-generation model (§III) |
//! | [`stream`] | raw/clean stream types, epoch sync, CQL-like queries (§II) |
//! | [`sim`] | warehouse & lab simulator producing noisy traces (§V-A/C) |
//! | [`learn`] | Monte-Carlo EM self-calibration (§III-C) |
//! | [`core`] | the particle-filter inference engine (§IV) |
//! | [`baselines`] | SMURF and uniform-sampling baselines (§V) |
//! | [`serve`] | query serving: embedded event store + TCP query server |
//!
//! ## Quickstart
//!
//! ```
//! use rfid_repro::prelude::*;
//!
//! // 1. simulate a small warehouse scan
//! let sc = rfid_repro::sim::scenario::small_trace(8, 4, 42);
//!
//! // 2. run the inference engine over the synchronized epoch stream
//! let model = JointModel::new(ModelParams::default_warehouse());
//! let mut cfg = FilterConfig::full_default();
//! cfg.particles_per_object = 200; // keep the doctest fast
//! let mut engine = InferenceEngine::new(
//!     model,
//!     sc.layout.clone(),
//!     sc.trace.shelf_tags.clone(),
//!     cfg,
//! )
//! .unwrap();
//! let events = run_engine(&mut engine, &sc.trace.epoch_batches());
//!
//! // 3. every object gets a location event
//! assert_eq!(events.len(), 8);
//! ```

pub use rfid_baselines as baselines;
pub use rfid_core as core;
pub use rfid_geom as geom;
pub use rfid_learn as learn;
pub use rfid_model as model;
pub use rfid_serve as serve;
pub use rfid_sim as sim;
pub use rfid_spatial as spatial;
pub use rfid_stream as stream;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use rfid_core::engine::run_engine;
    pub use rfid_core::{CompressionPolicy, FilterConfig, InferenceEngine, ReaderMode};
    pub use rfid_geom::{Aabb, Point3, Pose, Vec3};
    pub use rfid_learn::{calibrate, EmConfig};
    pub use rfid_model::object::LocationPrior;
    pub use rfid_model::sensor::{ConeSensor, LogisticSensorModel, ReadRateModel};
    pub use rfid_model::{JointModel, ModelParams, SensorParams};
    pub use rfid_sim::{GroundTruth, SimTrace, TraceGenerator, Trajectory, WarehouseLayout};
    pub use rfid_stream::{
        Epoch, EpochBatch, EventSink, InferenceStage, LocationEvent, Pipeline, PipelineStats,
        ReadingSource, RfidReading, StreamItem, TagId,
    };
}
